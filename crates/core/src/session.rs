//! Compilation as a reusable service.
//!
//! Generating a compiler for a target is not free: the BURS matcher
//! tables must be indexed from the grammar (the step iburg performs
//! offline). A [`Session`] amortizes that cost — it caches one generated
//! [`Compiler`] per *structural* target description and hands out shared
//! `Arc` handles, so the second and every later compile for a target
//! pays only for the compile itself. Lookup hashes a cheap summary of
//! the description (name, word width, table dimensions) and confirms
//! candidates with full structural equality, so a hit is both fast and
//! exact.
//!
//! Sessions are thread-safe (`&Session` can be shared freely) and offer
//! [`compile_batch`](Session::compile_batch): independent kernels are
//! compiled concurrently on scoped threads against the *same* cached
//! tables, with results returned in input order regardless of which
//! thread finished first.
//!
//! Every compile routed through a session also feeds the session-wide
//! [`PhaseTimings`] aggregate, giving the batch driver a per-phase
//! profile of where compilation time went.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;

use record_ir::lir::Lir;
use record_isa::{Code, TargetDesc};
use record_trace::{MetricsRegistry, SpanRecorder, Tracer};

use crate::cache::{self, CacheKey, CacheStats, CompileCache};
use crate::timing::PhaseTimings;
use crate::{CompileError, CompileOptions, Compiler, PassPlan};

/// In-memory entry bound of the code cache when
/// [`Session::with_cache_dir`] is called without a preceding
/// [`Session::with_code_cache`].
const DEFAULT_CODE_CACHE_CAPACITY: usize = 256;

/// Bucket bounds (µs) for the `record_compile_latency_us` histogram.
const LATENCY_BUCKETS_US: &[f64] = &[
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
    500_000.0,
];

/// Bucket bounds for the per-kernel code-size histograms
/// (`record_kernel_insns`, `record_kernel_words`).
const SIZE_BUCKETS: &[f64] = &[4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Bucket bounds for `record_bundle_fill` (operations per issued
/// instruction; 1.0 = no parallelism).
const FILL_BUCKETS: &[f64] = &[1.0, 1.25, 1.5, 2.0, 3.0, 4.0];

/// Feeds one successful compile's [`PhaseTimings`] into a registry —
/// shared by the single-compile path (straight into the session
/// registry) and the batch workers (into a worker-local registry merged
/// at join).
fn observe_compile(metrics: &MetricsRegistry, timings: &PhaseTimings) {
    metrics.inc("record_compiles_total");
    metrics.add("record_salvaged_passes_total", timings.salvages.len() as u64);
    metrics.observe(
        "record_compile_latency_us",
        LATENCY_BUCKETS_US,
        timings.total.as_secs_f64() * 1e6,
    );
    metrics.observe("record_kernel_insns", SIZE_BUCKETS, timings.insns as f64);
    metrics.add("record_variants_total", timings.variants as u64);
    metrics.add("record_variants_pruned_total", timings.variants_pruned);
    metrics.add("record_interned_nodes_total", timings.interned_nodes);
    metrics.add("record_dedup_hits_total", timings.dedup_hits);
    metrics.add("record_labels_computed_total", timings.labels_computed);
    metrics.add("record_labels_memoized_total", timings.labels_memoized);
    metrics.add("record_search_steps_total", timings.search_steps);
    metrics.add("record_shared_subtrees_total", timings.shared_subtrees);
    metrics.add("record_shares_taken_total", timings.shares_taken);
    metrics.add("record_recomputes_chosen_total", timings.recomputes_chosen);
    if let Some(last) = timings.passes.last() {
        metrics.observe("record_kernel_words", SIZE_BUCKETS, f64::from(last.after.words));
        if last.after.insns > 0 {
            let ops = (last.after.insns + last.after.parallel_ops) as f64;
            metrics.observe("record_bundle_fill", FILL_BUCKETS, ops / last.after.insns as f64);
        }
    }
}

/// Cache and counter snapshot of a [`Session`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Compiler-cache hits (a compile reused generated tables).
    pub hits: usize,
    /// Compiler-cache misses (tables had to be generated).
    pub misses: usize,
    /// Distinct targets currently cached.
    pub targets: usize,
    /// Programs compiled through the session (batch or single).
    pub compiles: usize,
    /// Best-effort passes dropped to salvage compiles (graceful
    /// degradation events across the whole session).
    pub salvaged_passes: usize,
    /// Code-cache hits: compiles answered without running any pass
    /// (zero unless [`Session::with_code_cache`]/[`Session::with_cache_dir`]
    /// enabled the cache).
    pub code_hits: u64,
    /// Code-cache lookups that had to compile.
    pub code_misses: u64,
    /// In-memory code-cache entries dropped by the LRU bound.
    pub code_evictions: u64,
    /// On-disk cache entries rejected as corrupt and deleted.
    pub code_corruptions: u64,
    /// BURS table sets loaded from the disk cache instead of generated.
    pub tables_loaded: u64,
}

/// A compilation service: per-target compiler cache + parallel batch
/// driver + phase-timing aggregation.
///
/// # Example
///
/// ```
/// use record::Session;
///
/// let session = Session::new();
/// let target = record_isa::targets::tic25::target();
/// let src = "program p; var x, y: fix; begin y := x + 1; end";
/// let a = session.compile_source(&target, src)?;
/// let b = session.compile_source(&target, src)?; // cache hit: tables reused
/// assert_eq!(a.render(), b.render());
/// assert_eq!(session.stats().hits, 1);
/// assert_eq!(session.stats().misses, 1);
/// # Ok::<(), record::CompileError>(())
/// ```
pub struct Session {
    options: CompileOptions,
    /// Overrides `options` when set: every compile runs this exact plan.
    plan: Option<PassPlan>,
    /// Buckets by [`cache_key`]; entries within a bucket are confirmed
    /// by full `TargetDesc` equality, so key collisions are harmless.
    compilers: RwLock<HashMap<u64, Vec<Arc<Compiler>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    compiles: AtomicUsize,
    salvaged: AtomicUsize,
    timings: Mutex<PhaseTimings>,
    /// When set, every compile records a span tree into this tracer and
    /// cache lookups emit `cache-hit`/`cache-miss` instant events.
    tracer: Option<Arc<Tracer>>,
    /// Counters, gauges and histograms fed by every compile routed
    /// through the session (see [`Session::metrics`]).
    metrics: MetricsRegistry,
    /// The opt-in two-level compile cache ([`Session::with_code_cache`] /
    /// [`Session::with_cache_dir`]). `None` (the default) preserves the
    /// always-compile behaviour exactly.
    code_cache: Option<Mutex<CompileCache>>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session compiling with [`CompileOptions::default`].
    pub fn new() -> Self {
        Self::with_options(CompileOptions::default())
    }

    /// A session compiling with explicit options (applied to every
    /// compile routed through it).
    pub fn with_options(options: CompileOptions) -> Self {
        Session {
            options,
            plan: None,
            compilers: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            compiles: AtomicUsize::new(0),
            salvaged: AtomicUsize::new(0),
            timings: Mutex::new(PhaseTimings::default()),
            tracer: None,
            metrics: MetricsRegistry::new(),
            code_cache: None,
        }
    }

    /// Enables the in-memory compile cache: compiled [`Code`] is keyed
    /// by `(program, target, plan)` fingerprints and a repeat compile of
    /// a structurally identical program returns the cached (byte-
    /// identical) code without running a single pass. At most `capacity`
    /// entries stay resident (LRU).
    ///
    /// ```
    /// use record::Session;
    ///
    /// let session = Session::new().with_code_cache(64);
    /// let target = record_isa::targets::tic25::target();
    /// let src = "program p; var x, y: fix; begin y := x + 1; end";
    /// let a = session.compile_source(&target, src)?;
    /// let b = session.compile_source(&target, src)?; // code-cache hit
    /// assert_eq!(a.render(), b.render());
    /// assert_eq!(session.stats().code_hits, 1);
    /// # Ok::<(), record::CompileError>(())
    /// ```
    #[must_use]
    pub fn with_code_cache(mut self, capacity: usize) -> Self {
        self.code_cache = Some(Mutex::new(CompileCache::new(capacity)));
        self
    }

    /// Enables the on-disk store under `dir` (implies
    /// [`with_code_cache`](Session::with_code_cache) with a default
    /// capacity when not already enabled): compiled code *and* generated
    /// BURS tables persist across processes, so a later session
    /// cold-starts a known target by loading its tables and answers
    /// repeat compiles from disk. Corrupt files are treated as misses
    /// and deleted, never as errors.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        let cache = match self.code_cache.take() {
            Some(m) => m.into_inner().expect("code cache lock"),
            None => CompileCache::new(DEFAULT_CODE_CACHE_CAPACITY),
        };
        self.code_cache = Some(Mutex::new(cache.with_dir(dir)));
        self
    }

    /// Attaches a [`Tracer`]: every subsequent compile submits a
    /// `compile` span tree (one child span per executed pass) to it, and
    /// compiler-cache lookups emit `cache-hit`/`cache-miss` instants.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use record::{Session, Tracer};
    ///
    /// let tracer = Arc::new(Tracer::new());
    /// let session = Session::new().with_tracer(Arc::clone(&tracer));
    /// let target = record_isa::targets::tic25::target();
    /// session.compile_source(&target, "program p; var x, y: fix; begin y := x + 1; end")?;
    /// assert_eq!(tracer.traces().len(), 1);
    /// # Ok::<(), record::CompileError>(())
    /// ```
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The session's metrics registry: compile/salvage/cache counters,
    /// hit-ratio and salvage-rate gauges, and latency/size/fill
    /// histograms, aggregated across every compile (batch workers fold
    /// their observations in at join). Render it with
    /// [`MetricsRegistry::render_prometheus`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Routes every compile in this session through an explicit
    /// [`PassPlan`] instead of the plan derived from the options —
    /// the hook for injecting custom passes (or custom budgets) into
    /// batch compilation.
    #[must_use]
    pub fn with_plan(mut self, plan: PassPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The options every compile in this session uses.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The cached compiler for `target`, generating (and caching) it on
    /// first use. Two structurally identical descriptions share one
    /// compiler — and one set of BURS tables.
    ///
    /// # Errors
    ///
    /// [`CompileError::Target`] if the description fails validation.
    pub fn compiler_for(&self, target: &TargetDesc) -> Result<Arc<Compiler>, CompileError> {
        let key = cache_key(target);
        if let Some(compiler) = self
            .compilers
            .read()
            .expect("cache lock")
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|c| c.target() == target))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.inc("record_cache_hits_total");
            self.update_rate_gauges();
            if let Some(t) = &self.tracer {
                t.instant("cache-hit", &[("target", target.name.as_str().into())]);
            }
            return Ok(Arc::clone(compiler));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.inc("record_cache_misses_total");
        self.update_rate_gauges();
        if let Some(t) = &self.tracer {
            t.instant("cache-miss", &[("target", target.name.as_str().into())]);
        }
        let compiler = Arc::new(self.generate_compiler(target)?);
        let mut cache = self.compilers.write().expect("cache lock");
        let bucket = cache.entry(key).or_default();
        // another thread may have won the race; keep the first entry so
        // every caller shares the same tables
        if let Some(existing) = bucket.iter().find(|c| c.target() == target) {
            return Ok(Arc::clone(existing));
        }
        bucket.push(Arc::clone(&compiler));
        Ok(compiler)
    }

    /// Builds the compiler for a target the session has not seen:
    /// tables come from the disk cache when one is configured and holds
    /// a consistent set (a file load, skipping table generation —
    /// `record_tables_loaded_total` counts these), and are stored back
    /// after generation otherwise.
    fn generate_compiler(&self, target: &TargetDesc) -> Result<Compiler, CompileError> {
        let Some(cache) = &self.code_cache else {
            return Compiler::for_target(target.clone());
        };
        let fp = cache::target_fingerprint(target);
        let loaded = {
            let mut guard = cache.lock().expect("code cache lock");
            let loaded = guard.load_tables(fp, target);
            self.apply_cache_metrics(guard.stats());
            loaded
        };
        if let Some(tables) = loaded {
            if let Ok(compiler) = Compiler::with_tables(target.clone(), Arc::new(tables)) {
                if let Some(t) = &self.tracer {
                    t.instant("tables-loaded", &[("target", target.name.as_str().into())]);
                }
                return Ok(compiler);
            }
        }
        let compiler = Compiler::for_target(target.clone())?;
        let mut guard = cache.lock().expect("code cache lock");
        guard.store_tables(fp, compiler.tables());
        Ok(compiler)
    }

    /// Folds the code cache's absolute counters into the metrics
    /// registry by delta. Callers hold (or just released) the cache
    /// lock, and every call site locks the cache around the compute —
    /// so concurrent deltas never double-count.
    fn apply_cache_metrics(&self, stats: CacheStats) {
        for (name, value) in [
            ("record_code_cache_hits_total", stats.hits),
            ("record_code_cache_misses_total", stats.misses),
            ("record_code_cache_evictions_total", stats.evictions),
            ("record_code_cache_corruptions_total", stats.corruptions),
            ("record_tables_loaded_total", stats.tables_loaded),
        ] {
            let current = self.metrics.counter(name);
            if value > current {
                self.metrics.add(name, value - current);
            }
        }
    }

    /// Compiles a lowered program with the session's options, through the
    /// compiler cache.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(&self, target: &TargetDesc, lir: &Lir) -> Result<Code, CompileError> {
        let compiler = self.compiler_for(target)?;
        let mut rec = SpanRecorder::disabled();
        let (code, timings) =
            self.count_errors(self.compile_lir(&compiler, lir, None, &mut rec))?;
        self.record(&timings);
        Ok(code)
    }

    /// Parses, lowers and compiles a mini-DFL source text through the
    /// compiler cache.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_source(&self, target: &TargetDesc, source: &str) -> Result<Code, CompileError> {
        self.compile_source_timed(target, source).map(|(code, _)| code)
    }

    /// Like [`compile_source`](Session::compile_source), additionally
    /// returning this compile's phase timings (they are also absorbed
    /// into the session aggregate).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_source_timed(
        &self,
        target: &TargetDesc,
        source: &str,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        self.compile_source_inner(target, source, None, &mut SpanRecorder::disabled())
    }

    /// [`compile_source_timed`](Session::compile_source_timed) under an
    /// absolute wall-clock deadline: the pipeline checks `deadline` at
    /// every pass boundary and clamps each search budget to it, so a
    /// request past its budget returns [`CompileError::Budget`] with
    /// resource `"deadline"` instead of running to completion. A request
    /// that is *already* expired fails before any work (including the
    /// cache lookup) happens. This is the per-request admission
    /// primitive the compile daemon serves from.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_source_deadline(
        &self,
        target: &TargetDesc,
        source: &str,
        deadline: std::time::Instant,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        let mut rec = SpanRecorder::disabled();
        self.compile_source_inner(target, source, Some(deadline), &mut rec)
    }

    /// [`compile_source_deadline`](Session::compile_source_deadline)
    /// recording into a caller-owned [`SpanRecorder`] — the request-
    /// scoped tracing hook the compile daemon uses: the caller hands in
    /// one recorder per request (no per-request [`Tracer`] allocation)
    /// and gets `parse`/`lower`/`compile` span trees plus
    /// `code-cache-hit`/`code-cache-miss` events back through it. When
    /// the recorder is *enabled* it takes precedence over the session
    /// tracer for this compile (the request owns its spans; submitting
    /// them to the shared tracer too would double-count); a disabled
    /// recorder leaves the tracer path exactly as before.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile_source_deadline_recorded(
        &self,
        target: &TargetDesc,
        source: &str,
        deadline: std::time::Instant,
        rec: &mut SpanRecorder,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        self.compile_source_inner(target, source, Some(deadline), rec)
    }

    fn compile_source_inner(
        &self,
        target: &TargetDesc,
        source: &str,
        deadline: Option<std::time::Instant>,
        rec: &mut SpanRecorder,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        let compiler = self.compiler_for(target)?;
        let (code, timings) =
            self.count_errors(self.compile_one_source(&compiler, source, deadline, rec))?;
        self.record(&timings);
        Ok((code, timings))
    }

    /// Compiles independent lowered programs concurrently on scoped
    /// threads, all sharing the cached compiler for `target`.
    ///
    /// The result vector is index-aligned with `programs` — slot `i`
    /// always holds program `i`'s outcome, so the output is deterministic
    /// regardless of thread scheduling. A program that fails to compile
    /// yields an `Err` in its slot without disturbing its neighbours.
    ///
    /// # Errors
    ///
    /// [`CompileError::Target`] if the target description itself is
    /// invalid (no per-program work happens in that case).
    pub fn compile_batch(
        &self,
        target: &TargetDesc,
        programs: &[Lir],
    ) -> Result<Vec<Result<Code, CompileError>>, CompileError> {
        let compiler = self.compiler_for(target)?;
        self.note_batch_reuse(programs.len());
        self.run_batch(programs.len(), None, |i| {
            self.compile_lir(&compiler, &programs[i], None, &mut SpanRecorder::disabled())
        })
    }

    /// [`compile_batch`](Session::compile_batch) under an absolute
    /// wall-clock deadline for the whole batch. Jobs that have not
    /// started when the deadline passes — and jobs whose in-flight
    /// pipeline crosses it at a pass boundary — fill their slot with
    /// [`CompileError::Budget`] (resource `"deadline"`) instead of
    /// running to completion; already-finished neighbours keep their
    /// results. Per-pass deadlines still apply on top.
    ///
    /// # Errors
    ///
    /// [`CompileError::Target`] if the target description is invalid.
    pub fn compile_batch_deadline(
        &self,
        target: &TargetDesc,
        programs: &[Lir],
        deadline: std::time::Instant,
    ) -> Result<Vec<Result<Code, CompileError>>, CompileError> {
        let compiler = self.compiler_for(target)?;
        self.note_batch_reuse(programs.len());
        self.run_batch(programs.len(), Some(deadline), |i| {
            self.compile_lir(&compiler, &programs[i], Some(deadline), &mut SpanRecorder::disabled())
        })
    }

    /// [`compile_batch`](Session::compile_batch) over source texts:
    /// parsing, lowering and compiling all happen on the worker threads.
    ///
    /// # Errors
    ///
    /// [`CompileError::Target`] if the target description is invalid.
    pub fn compile_batch_sources(
        &self,
        target: &TargetDesc,
        sources: &[&str],
    ) -> Result<Vec<Result<Code, CompileError>>, CompileError> {
        let compiler = self.compiler_for(target)?;
        self.note_batch_reuse(sources.len());
        self.run_batch(sources.len(), None, |i| {
            self.compile_one_source(&compiler, sources[i], None, &mut SpanRecorder::disabled())
        })
    }

    /// [`compile_batch_sources`](Session::compile_batch_sources) under
    /// an absolute wall-clock deadline (see
    /// [`compile_batch_deadline`](Session::compile_batch_deadline)).
    ///
    /// # Errors
    ///
    /// [`CompileError::Target`] if the target description is invalid.
    pub fn compile_batch_sources_deadline(
        &self,
        target: &TargetDesc,
        sources: &[&str],
        deadline: std::time::Instant,
    ) -> Result<Vec<Result<Code, CompileError>>, CompileError> {
        let compiler = self.compiler_for(target)?;
        self.note_batch_reuse(sources.len());
        self.run_batch(sources.len(), Some(deadline), |i| {
            self.compile_one_source(
                &compiler,
                sources[i],
                Some(deadline),
                &mut SpanRecorder::disabled(),
            )
        })
    }

    /// Snapshot of the cache and compile counters.
    pub fn stats(&self) -> SessionStats {
        let code = self
            .code_cache
            .as_ref()
            .map(|c| c.lock().expect("code cache lock").stats())
            .unwrap_or_default();
        SessionStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            targets: self.compilers.read().expect("cache lock").values().map(Vec::len).sum(),
            compiles: self.compiles.load(Ordering::Relaxed),
            salvaged_passes: self.salvaged.load(Ordering::Relaxed),
            code_hits: code.hits,
            code_misses: code.misses,
            code_evictions: code.evictions,
            code_corruptions: code.corruptions,
            tables_loaded: code.tables_loaded,
        }
    }

    /// The accumulated per-phase timings of every successful compile
    /// routed through this session.
    pub fn timings(&self) -> PhaseTimings {
        self.timings.lock().expect("timings lock").clone()
    }

    fn record(&self, timings: &PhaseTimings) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        if timings.from_cache {
            // a cache hit is a compile (the caller got code) but did no
            // phase work: count it, keep the zeroed timings out of the
            // aggregate and the latency/size histograms
            self.metrics.inc("record_compiles_total");
            self.update_rate_gauges();
            return;
        }
        self.salvaged.fetch_add(timings.salvages.len(), Ordering::Relaxed);
        self.timings.lock().expect("timings lock").absorb(timings);
        observe_compile(&self.metrics, timings);
        self.update_rate_gauges();
    }

    /// Counts a failed compile into `record_compile_errors_total`
    /// (successes pass through untouched).
    fn count_errors<T>(&self, result: Result<T, CompileError>) -> Result<T, CompileError> {
        if result.is_err() {
            self.metrics.inc("record_compile_errors_total");
        }
        result
    }

    /// Credits the cache with the reuse a batch actually gets: program
    /// `i > 0` compiles against the compiler the batch looked up once,
    /// where the equivalent sequential compiles would each have hit the
    /// cache. Keeping the ledger this way makes batch and sequential
    /// hit ratios identical, instead of a batch of `n` counting a single
    /// lookup.
    fn note_batch_reuse(&self, n: usize) {
        let extra = n.saturating_sub(1);
        if extra > 0 {
            self.hits.fetch_add(extra, Ordering::Relaxed);
            self.metrics.add("record_cache_hits_total", extra as u64);
            self.update_rate_gauges();
        }
    }

    /// Refreshes the derived gauges from the counters they summarize.
    fn update_rate_gauges(&self) {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        if hits + misses > 0 {
            self.metrics.set_gauge("record_cache_hit_ratio", hits as f64 / (hits + misses) as f64);
        }
        let compiles = self.compiles.load(Ordering::Relaxed);
        if compiles > 0 {
            let salvaged = self.salvaged.load(Ordering::Relaxed);
            self.metrics.set_gauge("record_salvage_rate", salvaged as f64 / compiles as f64);
        }
    }

    /// The one compile primitive every session entry point funnels into:
    /// the explicit plan when one is set, the options-derived plan
    /// otherwise. With the code cache enabled, the compile is keyed and
    /// looked up first — a hit returns the stored code without running
    /// any pass (`from_cache` timings, `labels_computed == 0`), and a
    /// miss stores the freshly compiled code for next time.
    fn compile_lir(
        &self,
        compiler: &Compiler,
        lir: &Lir,
        deadline: Option<std::time::Instant>,
        rec: &mut SpanRecorder,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        let tracer = self.tracer.as_deref();
        // kernel names are caller-supplied (hostile, in the daemon) —
        // they flow into a label value here and are escaped by the
        // exporter, never interpolated raw
        self.metrics.inc_with("record_kernel_compiles_total", &[("kernel", lir.name.as_str())]);
        if let Some(at) = deadline {
            if std::time::Instant::now() >= at {
                // already expired on arrival: refuse before any work,
                // the cache lookup included
                return Err(CompileError::Budget {
                    pass: "admission".into(),
                    resource: "deadline".into(),
                });
            }
        }
        let options_plan;
        let base_plan = match &self.plan {
            Some(plan) => plan,
            None => {
                options_plan = PassPlan::from_options(&self.options);
                &options_plan
            }
        };
        // the hard deadline is excluded from the plan fingerprint, so
        // cloning it in never fragments the code cache
        let deadline_plan;
        let plan = match deadline {
            Some(at) => {
                deadline_plan = base_plan.clone().deadline(at);
                &deadline_plan
            }
            None => base_plan,
        };
        let Some(cache) = &self.code_cache else {
            return self.compile_plan_dispatch(compiler, lir, plan, rec);
        };
        let key = CacheKey {
            program: record_ir::fingerprint::program_fingerprint(lir),
            target: compiler.stable_fingerprint(),
            plan: plan.fingerprint(),
        };
        let hit = {
            let mut guard = cache.lock().expect("code cache lock");
            let hit = guard.lookup(&key, lir, &compiler.target().name);
            self.apply_cache_metrics(guard.stats());
            hit
        };
        if let Some(code) = hit {
            rec.event("code-cache-hit", &[("program", lir.name.as_str().into())]);
            if let Some(t) = tracer {
                t.instant("code-cache-hit", &[("program", lir.name.as_str().into())]);
            }
            return Ok((code, PhaseTimings { from_cache: true, ..PhaseTimings::default() }));
        }
        rec.event("code-cache-miss", &[("program", lir.name.as_str().into())]);
        if let Some(t) = tracer {
            t.instant("code-cache-miss", &[("program", lir.name.as_str().into())]);
        }
        let result = self.compile_plan_dispatch(compiler, lir, plan, rec);
        if let Ok((code, _)) = &result {
            let mut guard = cache.lock().expect("code cache lock");
            guard.insert(key, lir, &compiler.target().name, code);
            self.apply_cache_metrics(guard.stats());
        }
        result
    }

    fn compile_one_source(
        &self,
        compiler: &Compiler,
        source: &str,
        deadline: Option<std::time::Instant>,
        rec: &mut SpanRecorder,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        let t_parse = std::time::Instant::now();
        rec.open("parse");
        let ast = record_ir::dfl::parse(source);
        if let Err(e) = &ast {
            rec.attr("error", e.to_string());
        }
        rec.close();
        let ast = ast?;
        let parse = t_parse.elapsed();
        let t_lower = std::time::Instant::now();
        rec.open("lower");
        let lir = record_ir::lower::lower(&ast);
        if let Err(e) = &lir {
            rec.attr("error", e.to_string());
        }
        rec.close();
        let lir = lir?;
        let lower = t_lower.elapsed();
        let (code, mut timings) = self.compile_lir(compiler, &lir, deadline, rec)?;
        timings.parse = parse;
        timings.lower = lower;
        timings.total += parse + lower;
        Ok((code, timings))
    }

    /// Runs the pipeline through whichever recorder is live for this
    /// compile: an enabled request-scoped recorder wins over the session
    /// tracer (the request owns its spans; submitting them to the shared
    /// tracer too would double-count the compile).
    fn compile_plan_dispatch(
        &self,
        compiler: &Compiler,
        lir: &Lir,
        plan: &PassPlan,
        rec: &mut SpanRecorder,
    ) -> Result<(Code, PhaseTimings), CompileError> {
        if rec.is_enabled() {
            compiler.compile_plan_recorded(lir, plan, rec)
        } else {
            compiler.compile_plan_traced(lir, plan, self.tracer.as_deref())
        }
    }

    /// Fans `n` jobs out over scoped worker threads (work-stealing by
    /// atomic index) and collects the results into index-aligned slots.
    ///
    /// Each job runs under `catch_unwind`: a panic that escapes the
    /// compiler's own pass-level isolation (or fires in the frontend)
    /// becomes [`CompileError::Internal`] in that job's slot, so one
    /// poisoned kernel can never tear down the batch or leave its worker
    /// thread dead.
    ///
    /// Workers accumulate their timings, counters and metric
    /// observations *locally* and fold them into the session once, when
    /// they run out of work — the shared locks are taken once per worker
    /// instead of once per compile, and nothing is dropped on join.
    fn run_batch<F>(
        &self,
        n: usize,
        deadline: Option<std::time::Instant>,
        job: F,
    ) -> Result<Vec<Result<Code, CompileError>>, CompileError>
    where
        F: Fn(usize) -> Result<(Code, PhaseTimings), CompileError> + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
        let slots: Vec<Mutex<Option<Result<Code, CompileError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local_timings = PhaseTimings::default();
                    let local_metrics = MetricsRegistry::new();
                    let mut local_compiles = 0usize;
                    let mut local_salvaged = 0usize;
                    let mut did_anything = false;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        did_anything = true;
                        // a job claimed after the batch deadline never
                        // starts: its slot reports the blown budget and
                        // the worker moves on to drain the queue fast
                        let result = if deadline.is_some_and(|at| std::time::Instant::now() >= at) {
                            Err(CompileError::Budget {
                                pass: "batch".into(),
                                resource: "deadline".into(),
                            })
                        } else {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
                                .unwrap_or_else(|payload| {
                                    Err(CompileError::Internal {
                                        pass: "batch".into(),
                                        message: crate::pass::panic_message(payload.as_ref()),
                                    })
                                })
                        };
                        let outcome = match result {
                            Ok((code, timings)) => {
                                local_compiles += 1;
                                if timings.from_cache {
                                    local_metrics.inc("record_compiles_total");
                                } else {
                                    local_salvaged += timings.salvages.len();
                                    local_timings.absorb(&timings);
                                    observe_compile(&local_metrics, &timings);
                                }
                                Ok(code)
                            }
                            Err(e) => {
                                local_metrics.inc("record_compile_errors_total");
                                Err(e)
                            }
                        };
                        *slots[i].lock().expect("slot lock") = Some(outcome);
                    }
                    if did_anything {
                        self.compiles.fetch_add(local_compiles, Ordering::Relaxed);
                        self.salvaged.fetch_add(local_salvaged, Ordering::Relaxed);
                        self.timings.lock().expect("timings lock").absorb(&local_timings);
                        self.metrics.merge(&local_metrics);
                        self.update_rate_gauges();
                    }
                });
            }
        });
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every batch slot is written before the scope ends")
            })
            .collect())
    }
}

/// A deliberately shallow hash of the description — name, width and the
/// dimensions of every table. Hashing the full structure (hundreds of
/// rule strings) costs as much as a small compile; this summary is a few
/// dozen bytes, and [`Session::compiler_for`] confirms each candidate
/// with full structural equality anyway, so a collision merely scans one
/// extra bucket entry.
fn cache_key(target: &TargetDesc) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::hash::DefaultHasher::new();
    target.name.hash(&mut hasher);
    target.word_width.hash(&mut hasher);
    target.reg_classes.len().hash(&mut hasher);
    target.nonterms.len().hash(&mut hasher);
    target.rules.len().hash(&mut hasher);
    target.stores.len().hash(&mut hasher);
    target.fusions.len().hash(&mut hasher);
    target.modes.len().hash(&mut hasher);
    target.memory.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_ir::Symbol;
    use record_sim::run_program;

    fn src(i: usize) -> String {
        format!("program p{i}; var x, y: fix; begin y := x * {} + {i}; end", i + 2)
    }

    #[test]
    fn cache_hits_after_first_compile() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        for i in 0..3 {
            session.compile_source(&target, &src(i)).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.targets, 1);
        assert_eq!(stats.compiles, 3);
    }

    #[test]
    fn distinct_targets_get_distinct_compilers() {
        let session = Session::new();
        let t1 = record_isa::targets::tic25::target();
        let t2 = record_isa::targets::dsp56k::target();
        let c1 = session.compiler_for(&t1).unwrap();
        let c2 = session.compiler_for(&t2).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c2));
        // same structural target → same compiler instance
        let c1b = session.compiler_for(&t1.clone()).unwrap();
        assert!(Arc::ptr_eq(&c1, &c1b));
        assert_eq!(session.stats().targets, 2);
    }

    #[test]
    fn cached_compiler_shares_tables() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        let c1 = session.compiler_for(&target).unwrap();
        let c2 = session.compiler_for(&target).unwrap();
        assert!(Arc::ptr_eq(c1.tables(), c2.tables()));
    }

    #[test]
    fn same_key_different_structure_gets_a_distinct_compiler() {
        // same name and table dimensions → same cache key; the equality
        // confirmation must still tell the two descriptions apart
        let session = Session::new();
        let t1 = record_isa::targets::tic25::target();
        let mut t2 = t1.clone();
        t2.rules[0].cost.words += 1;
        assert_eq!(cache_key(&t1), cache_key(&t2));
        let c1 = session.compiler_for(&t1).unwrap();
        let c2 = session.compiler_for(&t2).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(session.stats().targets, 2);
        assert_eq!(session.stats().misses, 2);
        assert!(Arc::ptr_eq(&c1, &session.compiler_for(&t1).unwrap()));
    }

    #[test]
    fn invalid_target_is_not_cached() {
        let session = Session::new();
        let mut bad = record_isa::targets::tic25::target();
        bad.memory.banks = 3;
        assert!(session.compiler_for(&bad).is_err());
        assert_eq!(session.stats().targets, 0);
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        let sources: Vec<String> = (0..8).map(src).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let batch = session.compile_batch_sources(&target, &refs).unwrap();
        assert_eq!(batch.len(), refs.len());
        let fresh = Compiler::for_target(target.clone()).unwrap();
        for (i, outcome) in batch.iter().enumerate() {
            let code = outcome.as_ref().unwrap();
            assert_eq!(code.name, format!("p{i}"), "slot order is input order");
            let sequential = fresh.compile_source(refs[i]).unwrap();
            assert_eq!(code.render(), sequential.render());
        }
    }

    #[test]
    fn batch_isolates_per_program_errors() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        let good = src(0);
        let sources = [good.as_str(), "program broken; begin nope", good.as_str()];
        let batch = session.compile_batch_sources(&target, &sources).unwrap();
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
        assert!(batch[2].is_ok());
    }

    #[test]
    fn batch_of_lirs_runs_correctly() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        let lirs: Vec<Lir> = (0..4)
            .map(|i| {
                let ast = record_ir::dfl::parse(&src(i)).unwrap();
                record_ir::lower::lower(&ast).unwrap()
            })
            .collect();
        let batch = session.compile_batch(&target, &lirs).unwrap();
        for (i, outcome) in batch.iter().enumerate() {
            let code = outcome.as_ref().unwrap();
            let inputs = [(Symbol::new("x"), vec![5i64])].into_iter().collect();
            let (out, _) = run_program(code, &target, &inputs).unwrap();
            assert_eq!(out[&Symbol::new("y")], vec![5 * (i as i64 + 2) + i as i64]);
        }
    }

    #[test]
    fn batch_hit_ratio_matches_sequential() {
        let target = record_isa::targets::tic25::target();
        let sources: Vec<String> = (0..8).map(src).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();

        let sequential = Session::new();
        for s in &refs {
            sequential.compile_source(&target, s).unwrap();
        }
        let batch = Session::new();
        batch.compile_batch_sources(&target, &refs).unwrap();

        let (s, b) = (sequential.stats(), batch.stats());
        assert_eq!((b.hits, b.misses), (s.hits, s.misses), "batch {b:?} vs sequential {s:?}");
        assert_eq!(b.misses, 1);
        assert_eq!(b.hits, 7);
        // the metrics registry agrees with the atomic counters
        assert_eq!(batch.metrics().counter("record_cache_hits_total"), 7);
        assert_eq!(batch.metrics().counter("record_cache_misses_total"), 1);
        assert_eq!(batch.metrics().counter("record_compiles_total"), 8);
    }

    #[test]
    fn metrics_count_compiles_and_errors() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        session.compile_source(&target, &src(0)).unwrap();
        assert!(session.compile_source(&target, "program broken; begin nope").is_err());
        let m = session.metrics();
        assert_eq!(m.counter("record_compiles_total"), 1);
        assert_eq!(m.counter("record_compile_errors_total"), 1);
        let text = m.render_prometheus();
        assert!(text.contains("record_compile_latency_us_bucket"), "{text}");
        assert!(text.contains("record_cache_hit_ratio"), "{text}");
        assert!(text.contains("record_kernel_insns_count 1"), "{text}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        assert!(session.compile_batch(&target, &[]).unwrap().is_empty());
    }

    #[test]
    fn code_cache_hit_skips_selection_entirely() {
        let session = Session::new().with_code_cache(16);
        let target = record_isa::targets::tic25::target();
        let (cold, cold_t) = session.compile_source_timed(&target, &src(0)).unwrap();
        assert!(!cold_t.from_cache);
        assert!(cold_t.labels_computed > 0, "cold compile does real selection");
        let (warm, warm_t) = session.compile_source_timed(&target, &src(0)).unwrap();
        assert!(warm_t.from_cache);
        assert_eq!(warm_t.labels_computed, 0, "warm hit must not label a single tree");
        assert!(warm_t.passes.is_empty(), "no pass ran on the hit path");
        assert_eq!(warm.render(), cold.render());
        let stats = session.stats();
        assert_eq!((stats.code_hits, stats.code_misses), (1, 1));
        assert_eq!(stats.compiles, 2, "a hit still counts as a compile");
        assert_eq!(session.metrics().counter("record_code_cache_hits_total"), 1);
        assert_eq!(session.metrics().counter("record_code_cache_misses_total"), 1);
        assert_eq!(session.metrics().counter("record_compiles_total"), 2);
        // the timing aggregate describes work done: one compile's worth
        assert_eq!(session.timings().statements, cold_t.statements);
    }

    #[test]
    fn code_cache_distinguishes_plan_and_program() {
        let target = record_isa::targets::tic25::target();
        let o0 = Session::new().with_plan(PassPlan::o0()).with_code_cache(16);
        o0.compile_source(&target, &src(0)).unwrap();
        o0.compile_source(&target, &src(1)).unwrap();
        // two distinct programs: no sharing
        assert_eq!(o0.stats().code_hits, 0);
        assert_eq!(o0.stats().code_misses, 2);
    }

    #[test]
    fn without_code_cache_every_compile_is_fresh() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        let (_, t1) = session.compile_source_timed(&target, &src(0)).unwrap();
        let (_, t2) = session.compile_source_timed(&target, &src(0)).unwrap();
        assert!(!t1.from_cache && !t2.from_cache);
        assert_eq!(session.stats().code_hits, 0);
        assert_eq!(session.metrics().counter("record_code_cache_hits_total"), 0);
    }

    #[test]
    fn disk_cache_warm_starts_a_second_session() {
        let dir = std::env::temp_dir().join(format!("record-session-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let target = record_isa::targets::tic25::target();

        let first = Session::new().with_cache_dir(&dir);
        let a = first.compile_source(&target, &src(0)).unwrap();
        assert_eq!(first.stats().tables_loaded, 0, "nothing on disk yet");

        // a brand-new session (cold memory) shares the directory: BURS
        // tables load from disk and the compile is answered from disk
        let second = Session::new().with_cache_dir(&dir);
        let (b, t) = second.compile_source_timed(&target, &src(0)).unwrap();
        assert!(t.from_cache);
        assert_eq!(b.render(), a.render());
        let stats = second.stats();
        assert_eq!(stats.code_hits, 1);
        assert_eq!(stats.tables_loaded, 1, "cold start loaded tables instead of generating");
        assert_eq!(second.metrics().counter("record_tables_loaded_total"), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_through_code_cache_is_byte_identical() {
        let session = Session::new().with_code_cache(32);
        let target = record_isa::targets::tic25::target();
        let sources: Vec<String> = (0..4).map(src).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let cold: Vec<String> = session
            .compile_batch_sources(&target, &refs)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().render())
            .collect();
        let warm: Vec<String> = session
            .compile_batch_sources(&target, &refs)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().render())
            .collect();
        assert_eq!(cold, warm);
        let stats = session.stats();
        assert_eq!(stats.code_hits, 4);
        assert_eq!(stats.code_misses, 4);
        assert_eq!(session.metrics().counter("record_compiles_total"), 8);
    }

    #[test]
    fn timings_accumulate() {
        let session = Session::new();
        let target = record_isa::targets::tic25::target();
        session.compile_source(&target, &src(0)).unwrap();
        let after_one = session.timings();
        assert!(after_one.statements > 0);
        assert!(after_one.total > std::time::Duration::ZERO);
        session.compile_source(&target, &src(1)).unwrap();
        assert!(session.timings().statements > after_one.statements);
    }
}

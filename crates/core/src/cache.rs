//! Two-level content-addressed compile cache.
//!
//! The paper's compiler pays two distinct fixed costs: generating the
//! BURS matcher tables for a target (the step iburg performs offline)
//! and compiling each kernel. This module caches both behind
//! content-derived keys so repeated work becomes a lookup:
//!
//! * **Compiled code** is keyed by [`CacheKey`] — the program's
//!   fingerprint (over its interned [`TreePool`](record_ir::pool::TreePool)
//!   form), the target's fingerprint, and the pass plan's fingerprint.
//!   An in-memory LRU answers warm lookups within a process; an
//!   optional on-disk store answers them across processes.
//! * **BURS tables** are keyed by the target fingerprint alone and
//!   stored on disk, so a later process cold-starts a target with a
//!   file load instead of table generation.
//!
//! Fingerprints are 64-bit, so collisions are improbable but not
//! impossible; every code hit is therefore confirmed by *exact
//! structural equality* of the stored [`Lir`] (and target name) against
//! the request — a collision degrades to a miss, never to wrong code.
//!
//! The disk format is hand-rolled (no serde): each file is a
//! [`codec::seal`]ed container — versioned magic header,
//! length-prefixed records, FNV-1a checksum trailer. **Every** way a
//! file can be wrong — truncation, bit rot, version skew, a record that
//! decodes to an impossible value — surfaces as a [`CodecError`] from
//! the bounds-checked reader, and the cache treats it as a miss: the
//! bad file is evicted, a corruption counter bumped, and the compile
//! proceeds as if the entry never existed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use record_burg::Tables;
use record_ir::lir::{AssignStmt, Lir, LirItem, StorageKind, VarInfo};
use record_ir::{Bank, BinOp, Index, MemRef, Symbol, Tree, UnOp};
use record_isa::code::LayoutEntry;
use record_isa::{
    AddrMode, Code, DataLayout, Insn, InsnKind, Loc, MemLoc, RegClassId, RegId, RuleId, SemExpr,
    TargetDesc,
};
use record_trace::codec::{self, ByteReader, ByteWriter, CodecError};

/// Magic + version framing a cached-code file.
const CODE_MAGIC: &[u8; 8] = b"RECCODE\0";
const CODE_VERSION: u32 = 1;

/// Decode recursion guard: trees, expressions and loop nests deeper
/// than this are rejected as corrupt rather than risking stack
/// exhaustion on hostile bytes. Real kernels nest a handful of levels.
const MAX_DECODE_DEPTH: usize = 512;

/// A stable fingerprint of a target description: FNV-1a over its
/// `Hash` derivation. Names the target's on-disk BURS table file and
/// forms the target component of a [`CacheKey`]. (The `DefaultHasher`
/// is randomly keyed per process — never persist it.)
pub fn target_fingerprint(target: &TargetDesc) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = codec::StableHasher::new();
    target.hash(&mut h);
    h.finish()
}

/// The content-derived identity of one compile:
/// (program, target, pass plan) as stable 64-bit fingerprints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`record_ir::fingerprint::program_fingerprint`] of the LIR.
    pub program: u64,
    /// [`target_fingerprint`] of the target description.
    pub target: u64,
    /// [`PassPlan::fingerprint`](crate::PassPlan::fingerprint).
    pub plan: u64,
}

/// Counter snapshot of a [`CompileCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Code lookups answered from memory or disk.
    pub hits: u64,
    /// Code lookups that found nothing usable.
    pub misses: u64,
    /// In-memory entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// On-disk entries rejected (truncated, checksum-failing,
    /// version-mismatched, or undecodable) and deleted.
    pub corruptions: u64,
    /// BURS table sets loaded from disk instead of being generated.
    pub tables_loaded: u64,
}

/// One resident cache entry. The request's `Lir` and target name are
/// kept alongside the code so a later lookup under a colliding
/// fingerprint can be refused by structural comparison.
struct Slot {
    tick: u64,
    lir: Lir,
    target_name: String,
    code: Code,
}

/// The two-level compile cache: in-memory LRU over [`CacheKey`] plus an
/// optional on-disk store shared across processes.
///
/// Not internally synchronized — [`Session`](crate::Session) wraps it
/// in a `Mutex`. Disk writes are best-effort (temp file + rename;
/// errors are swallowed): a read-only or full cache directory degrades
/// the cache, never the compile.
pub struct CompileCache {
    capacity: usize,
    tick: u64,
    slots: HashMap<CacheKey, Slot>,
    dir: Option<PathBuf>,
    stats: CacheStats,
}

impl CompileCache {
    /// An in-memory-only cache holding at most `capacity` entries
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CompileCache {
            capacity: capacity.max(1),
            tick: 0,
            slots: HashMap::new(),
            dir: None,
            stats: CacheStats::default(),
        }
    }

    /// Adds an on-disk store under `dir` (created on first write).
    /// Stale temp files from writers that died mid-write are swept on
    /// attach: they were never renamed into place, so deleting them can
    /// never lose a committed entry.
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        sweep_tmp_files(&dir);
        self.dir = Some(dir);
        self
    }

    /// The on-disk store directory, if one is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The file a code entry for `key` lives in (under the store dir).
    pub fn code_file_name(key: &CacheKey) -> String {
        format!("code-{:016x}-{:016x}-{:016x}.bin", key.program, key.target, key.plan)
    }

    /// The file the BURS tables for a target fingerprint live in.
    pub fn tables_file_name(target_fp: u64) -> String {
        format!("burs-{target_fp:016x}.bin")
    }

    /// Looks up compiled code for `(key, lir, target_name)`: memory
    /// first, then disk. A fingerprint collision (stored program or
    /// target differs structurally) and a corrupt disk entry both
    /// answer `None`; the corrupt file is deleted.
    pub fn lookup(&mut self, key: &CacheKey, lir: &Lir, target_name: &str) -> Option<Code> {
        if let Some(slot) = self.slots.get_mut(key) {
            if slot.lir == *lir && slot.target_name == target_name {
                self.tick += 1;
                slot.tick = self.tick;
                self.stats.hits += 1;
                return Some(slot.code.clone());
            }
            self.stats.misses += 1;
            return None;
        }
        if let Some(code) = self.lookup_disk(key, lir, target_name) {
            self.remember(*key, lir.clone(), target_name.to_string(), code.clone());
            self.stats.hits += 1;
            return Some(code);
        }
        self.stats.misses += 1;
        None
    }

    /// Stores a freshly compiled `code` under `key`, in memory and (when
    /// configured) on disk.
    pub fn insert(&mut self, key: CacheKey, lir: &Lir, target_name: &str, code: &Code) {
        self.remember(key, lir.clone(), target_name.to_string(), code.clone());
        if self.dir.is_some() {
            let payload = encode_entry(&key, lir, target_name, code);
            let sealed = codec::seal(CODE_MAGIC, CODE_VERSION, &payload);
            self.write_file(&Self::code_file_name(&key), &sealed);
        }
    }

    /// Loads the BURS tables for `target` from disk, verifying they are
    /// structurally consistent with the description. Inconsistent or
    /// undecodable tables count as corruption and the file is deleted.
    pub fn load_tables(&mut self, target_fp: u64, target: &TargetDesc) -> Option<Tables> {
        let path = self.dir.as_ref()?.join(Self::tables_file_name(target_fp));
        let bytes = std::fs::read(&path).ok()?;
        match Tables::from_bytes(&bytes) {
            Ok(tables) if tables.is_consistent_with(target) => {
                self.stats.tables_loaded += 1;
                Some(tables)
            }
            _ => {
                self.discard(&path);
                None
            }
        }
    }

    /// Writes the BURS tables for `target_fp` to disk (best-effort).
    pub fn store_tables(&mut self, target_fp: u64, tables: &Tables) {
        if self.dir.is_some() {
            let bytes = tables.to_bytes();
            self.write_file(&Self::tables_file_name(target_fp), &bytes);
        }
    }

    fn remember(&mut self, key: CacheKey, lir: Lir, target_name: String, code: Code) {
        self.tick += 1;
        self.slots.insert(key, Slot { tick: self.tick, lir, target_name, code });
        while self.slots.len() > self.capacity {
            let oldest = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.tick)
                .map(|(k, _)| *k)
                .expect("non-empty cache over capacity");
            self.slots.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn lookup_disk(&mut self, key: &CacheKey, lir: &Lir, target_name: &str) -> Option<Code> {
        let path = self.dir.as_ref()?.join(Self::code_file_name(key));
        let bytes = std::fs::read(&path).ok()?;
        match decode_entry(&bytes) {
            Ok((stored_key, stored_lir, stored_target, code)) => {
                if stored_key == *key && stored_lir == *lir && stored_target == target_name {
                    Some(code)
                } else if stored_key != *key {
                    // the file does not even claim to be this entry:
                    // overwritten or damaged in a way that still decodes
                    self.discard(&path);
                    None
                } else {
                    // true fingerprint collision: the entry is valid for
                    // some *other* program — leave it, miss here
                    None
                }
            }
            Err(_) => {
                self.discard(&path);
                None
            }
        }
    }

    /// Deletes a bad cache file and counts the corruption. Removal
    /// failure is ignored: the entry will simply be rediscovered (and
    /// rejected again) next time.
    fn discard(&mut self, path: &Path) {
        self.stats.corruptions += 1;
        let _ = std::fs::remove_file(path);
    }

    /// Best-effort atomic write: unique temp file (pid *and* a
    /// process-wide counter, so two threads of one process can never
    /// interleave writes into the same temp), fsync, then rename. A
    /// crash at any point leaves either the old state or the complete
    /// new file — never a truncated entry under the final name — and
    /// the orphaned temp is swept on the next [`with_dir`] attach. Two
    /// processes racing on the same entry both write the same content,
    /// so whichever rename lands last is equally good.
    fn write_file(&self, name: &str, bytes: &[u8]) {
        use std::io::Write as _;
        use std::sync::atomic::{AtomicU64, Ordering};
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let Some(dir) = &self.dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!("{name}.tmp.{}.{seq}", std::process::id()));
        let committed = std::fs::File::create(&tmp)
            .and_then(|mut f| {
                f.write_all(bytes)?;
                // without the fsync, rename can land before the data and
                // a power cut leaves a short file under the *final* name
                f.sync_all()
            })
            .and_then(|()| std::fs::rename(&tmp, dir.join(name)))
            .is_ok();
        if !committed {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Offline integrity scrub of a cache directory: every code entry is
    /// fully decoded, every BURS table set deserialized, and every stale
    /// temp file removed. Undecodable files are deleted and counted, so
    /// after a scrub every remaining file is loadable — the post-drain
    /// guarantee the compile daemon checks before reporting a clean
    /// exit. Unrecognized file names are left alone.
    pub fn scrub_dir(dir: &Path) -> ScrubStats {
        let mut stats = ScrubStats::default();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.contains(".tmp.") {
                if std::fs::remove_file(&path).is_ok() {
                    stats.tmps_removed += 1;
                }
                continue;
            }
            let valid = if name.starts_with("code-") && name.ends_with(".bin") {
                stats.code_entries += 1;
                std::fs::read(&path).is_ok_and(|b| decode_entry(&b).is_ok())
            } else if name.starts_with("burs-") && name.ends_with(".bin") {
                stats.table_entries += 1;
                std::fs::read(&path).is_ok_and(|b| Tables::from_bytes(&b).is_ok())
            } else {
                continue;
            };
            if !valid {
                stats.corrupt_removed += 1;
                let _ = std::fs::remove_file(&path);
            }
        }
        stats
    }
}

/// What a [`CompileCache::scrub_dir`] pass found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Code entries examined (valid ones are counted too).
    pub code_entries: usize,
    /// BURS table files examined.
    pub table_entries: usize,
    /// Undecodable files deleted.
    pub corrupt_removed: usize,
    /// Orphaned mid-write temp files deleted.
    pub tmps_removed: usize,
}

/// Deletes `*.tmp.*` leftovers from writers that died mid-write.
fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.contains(".tmp.")) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

// ---------------------------------------------------------------------------
// Entry codec: (key, lir, target name, code) in one sealed payload.
// ---------------------------------------------------------------------------

fn encode_entry(key: &CacheKey, lir: &Lir, target_name: &str, code: &Code) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(key.program);
    w.u64(key.target);
    w.u64(key.plan);
    w.str(target_name);
    encode_lir(&mut w, lir);
    encode_code(&mut w, code);
    w.into_bytes()
}

fn decode_entry(bytes: &[u8]) -> Result<(CacheKey, Lir, String, Code), CodecError> {
    let payload = codec::unseal(CODE_MAGIC, CODE_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let key = CacheKey { program: r.u64()?, target: r.u64()?, plan: r.u64()? };
    let target_name = r.str()?.to_string();
    let lir = decode_lir(&mut r)?;
    let code = decode_code(&mut r)?;
    r.finish()?;
    Ok((key, lir, target_name, code))
}

// -- IR side ----------------------------------------------------------------

fn encode_symbol(w: &mut ByteWriter, s: &Symbol) {
    w.str(s.as_str());
}

fn decode_symbol(r: &mut ByteReader<'_>) -> Result<Symbol, CodecError> {
    Ok(Symbol::new(r.str()?))
}

fn encode_bank(w: &mut ByteWriter, b: Bank) {
    w.u8(match b {
        Bank::X => 0,
        Bank::Y => 1,
    });
}

fn decode_bank(r: &mut ByteReader<'_>) -> Result<Bank, CodecError> {
    match r.u8()? {
        0 => Ok(Bank::X),
        1 => Ok(Bank::Y),
        t => Err(r.error(format!("bad bank tag {t}"))),
    }
}

fn encode_index(w: &mut ByteWriter, ix: &Index) {
    match ix {
        Index::Const(c) => {
            w.u8(0);
            w.i64(*c);
        }
        Index::Var { var, offset } => {
            w.u8(1);
            encode_symbol(w, var);
            w.i64(*offset);
        }
        Index::RevVar { var, offset } => {
            w.u8(2);
            encode_symbol(w, var);
            w.i64(*offset);
        }
    }
}

fn decode_index(r: &mut ByteReader<'_>) -> Result<Index, CodecError> {
    match r.u8()? {
        0 => Ok(Index::Const(r.i64()?)),
        1 => Ok(Index::Var { var: decode_symbol(r)?, offset: r.i64()? }),
        2 => Ok(Index::RevVar { var: decode_symbol(r)?, offset: r.i64()? }),
        t => Err(r.error(format!("bad index tag {t}"))),
    }
}

fn encode_mem_ref(w: &mut ByteWriter, m: &MemRef) {
    match m {
        MemRef::Scalar(s) => {
            w.u8(0);
            encode_symbol(w, s);
        }
        MemRef::Array { base, index } => {
            w.u8(1);
            encode_symbol(w, base);
            encode_index(w, index);
        }
    }
}

fn decode_mem_ref(r: &mut ByteReader<'_>) -> Result<MemRef, CodecError> {
    match r.u8()? {
        0 => Ok(MemRef::Scalar(decode_symbol(r)?)),
        1 => Ok(MemRef::Array { base: decode_symbol(r)?, index: decode_index(r)? }),
        t => Err(r.error(format!("bad memref tag {t}"))),
    }
}

fn encode_bin_op(w: &mut ByteWriter, op: BinOp) {
    w.u8(op as u8);
}

fn decode_bin_op(r: &mut ByteReader<'_>) -> Result<BinOp, CodecError> {
    Ok(match r.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::And,
        5 => BinOp::Or,
        6 => BinOp::Xor,
        7 => BinOp::Shl,
        8 => BinOp::Shr,
        9 => BinOp::SatAdd,
        10 => BinOp::SatSub,
        11 => BinOp::Min,
        12 => BinOp::Max,
        t => return Err(r.error(format!("bad binop tag {t}"))),
    })
}

fn encode_un_op(w: &mut ByteWriter, op: UnOp) {
    w.u8(op as u8);
}

fn decode_un_op(r: &mut ByteReader<'_>) -> Result<UnOp, CodecError> {
    Ok(match r.u8()? {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::Abs,
        3 => UnOp::Sat,
        4 => UnOp::Round,
        t => return Err(r.error(format!("bad unop tag {t}"))),
    })
}

fn encode_tree(w: &mut ByteWriter, t: &Tree) {
    match t {
        Tree::Const(c) => {
            w.u8(0);
            w.i64(*c);
        }
        Tree::Mem(m) => {
            w.u8(1);
            encode_mem_ref(w, m);
        }
        Tree::Temp(s) => {
            w.u8(2);
            encode_symbol(w, s);
        }
        Tree::Bin(op, a, b) => {
            w.u8(3);
            encode_bin_op(w, *op);
            encode_tree(w, a);
            encode_tree(w, b);
        }
        Tree::Un(op, a) => {
            w.u8(4);
            encode_un_op(w, *op);
            encode_tree(w, a);
        }
    }
}

fn decode_tree(r: &mut ByteReader<'_>, depth: usize) -> Result<Tree, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(r.error("tree nesting too deep"));
    }
    match r.u8()? {
        0 => Ok(Tree::Const(r.i64()?)),
        1 => Ok(Tree::Mem(decode_mem_ref(r)?)),
        2 => Ok(Tree::Temp(decode_symbol(r)?)),
        3 => {
            let op = decode_bin_op(r)?;
            let a = decode_tree(r, depth + 1)?;
            let b = decode_tree(r, depth + 1)?;
            Ok(Tree::Bin(op, Box::new(a), Box::new(b)))
        }
        4 => {
            let op = decode_un_op(r)?;
            Ok(Tree::Un(op, Box::new(decode_tree(r, depth + 1)?)))
        }
        t => Err(r.error(format!("bad tree tag {t}"))),
    }
}

fn encode_var_info(w: &mut ByteWriter, v: &VarInfo) {
    encode_symbol(w, &v.name);
    w.u32(v.len);
    w.u8(match v.kind {
        StorageKind::Var => 0,
        StorageKind::In => 1,
        StorageKind::Out => 2,
    });
    match v.bank {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            encode_bank(w, b);
        }
    }
    w.bool(v.is_fix);
}

fn decode_var_info(r: &mut ByteReader<'_>) -> Result<VarInfo, CodecError> {
    let name = decode_symbol(r)?;
    let len = r.u32()?;
    let kind = match r.u8()? {
        0 => StorageKind::Var,
        1 => StorageKind::In,
        2 => StorageKind::Out,
        t => return Err(r.error(format!("bad storage kind tag {t}"))),
    };
    let bank = match r.u8()? {
        0 => None,
        1 => Some(decode_bank(r)?),
        t => return Err(r.error(format!("bad option tag {t}"))),
    };
    let is_fix = r.bool()?;
    Ok(VarInfo { name, len, kind, bank, is_fix })
}

fn encode_lir_item(w: &mut ByteWriter, item: &LirItem) {
    match item {
        LirItem::Assign(a) => {
            w.u8(0);
            encode_mem_ref(w, &a.dst);
            encode_tree(w, &a.src);
        }
        LirItem::Loop { var, count, body } => {
            w.u8(1);
            encode_symbol(w, var);
            w.u32(*count);
            w.u32(body.len() as u32);
            for it in body {
                encode_lir_item(w, it);
            }
        }
    }
}

fn decode_lir_item(r: &mut ByteReader<'_>, depth: usize) -> Result<LirItem, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(r.error("loop nesting too deep"));
    }
    match r.u8()? {
        0 => {
            let dst = decode_mem_ref(r)?;
            let src = decode_tree(r, 0)?;
            Ok(LirItem::Assign(AssignStmt { dst, src }))
        }
        1 => {
            let var = decode_symbol(r)?;
            let count = r.u32()?;
            let n = r.seq_len(1)?;
            let mut body = Vec::with_capacity(n);
            for _ in 0..n {
                body.push(decode_lir_item(r, depth + 1)?);
            }
            Ok(LirItem::Loop { var, count, body })
        }
        t => Err(r.error(format!("bad lir item tag {t}"))),
    }
}

fn encode_lir(w: &mut ByteWriter, lir: &Lir) {
    encode_symbol(w, &lir.name);
    w.u32(lir.vars.len() as u32);
    for v in &lir.vars {
        encode_var_info(w, v);
    }
    w.u32(lir.body.len() as u32);
    for item in &lir.body {
        encode_lir_item(w, item);
    }
}

fn decode_lir(r: &mut ByteReader<'_>) -> Result<Lir, CodecError> {
    let name = decode_symbol(r)?;
    let n_vars = r.seq_len(8)?;
    let mut vars = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        vars.push(decode_var_info(r)?);
    }
    let n_items = r.seq_len(1)?;
    let mut body = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        body.push(decode_lir_item(r, 0)?);
    }
    Ok(Lir { name, vars, body })
}

// -- Code side --------------------------------------------------------------

fn encode_addr_mode(w: &mut ByteWriter, m: AddrMode) {
    match m {
        AddrMode::Unresolved => w.u8(0),
        AddrMode::Direct(a) => {
            w.u8(1);
            w.u16(a);
        }
        AddrMode::Indirect { ar, post } => {
            w.u8(2);
            w.u16(ar);
            w.u8(post as u8);
        }
    }
}

fn decode_addr_mode(r: &mut ByteReader<'_>) -> Result<AddrMode, CodecError> {
    match r.u8()? {
        0 => Ok(AddrMode::Unresolved),
        1 => Ok(AddrMode::Direct(r.u16()?)),
        2 => Ok(AddrMode::Indirect { ar: r.u16()?, post: r.u8()? as i8 }),
        t => Err(r.error(format!("bad addr mode tag {t}"))),
    }
}

fn encode_mem_loc(w: &mut ByteWriter, m: &MemLoc) {
    encode_symbol(w, &m.base);
    w.i64(m.disp);
    match &m.index {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            encode_symbol(w, s);
        }
    }
    w.bool(m.down);
    encode_bank(w, m.bank);
    encode_addr_mode(w, m.mode);
}

fn decode_mem_loc(r: &mut ByteReader<'_>) -> Result<MemLoc, CodecError> {
    let base = decode_symbol(r)?;
    let disp = r.i64()?;
    let index = match r.u8()? {
        0 => None,
        1 => Some(decode_symbol(r)?),
        t => return Err(r.error(format!("bad option tag {t}"))),
    };
    let down = r.bool()?;
    let bank = decode_bank(r)?;
    let mode = decode_addr_mode(r)?;
    Ok(MemLoc { base, disp, index, down, bank, mode })
}

fn encode_loc(w: &mut ByteWriter, l: &Loc) {
    match l {
        Loc::Reg(rid) => {
            w.u8(0);
            w.u16(rid.class.0);
            w.u16(rid.index);
        }
        Loc::Mem(m) => {
            w.u8(1);
            encode_mem_loc(w, m);
        }
        Loc::Imm(v) => {
            w.u8(2);
            w.i64(*v);
        }
    }
}

fn decode_loc(r: &mut ByteReader<'_>) -> Result<Loc, CodecError> {
    match r.u8()? {
        0 => Ok(Loc::Reg(RegId::new(RegClassId(r.u16()?), r.u16()?))),
        1 => Ok(Loc::Mem(decode_mem_loc(r)?)),
        2 => Ok(Loc::Imm(r.i64()?)),
        t => Err(r.error(format!("bad loc tag {t}"))),
    }
}

fn encode_sem_expr(w: &mut ByteWriter, e: &SemExpr) {
    match e {
        SemExpr::Loc(l) => {
            w.u8(0);
            encode_loc(w, l);
        }
        SemExpr::Bin(op, a, b) => {
            w.u8(1);
            encode_bin_op(w, *op);
            encode_sem_expr(w, a);
            encode_sem_expr(w, b);
        }
        SemExpr::Un(op, a) => {
            w.u8(2);
            encode_un_op(w, *op);
            encode_sem_expr(w, a);
        }
    }
}

fn decode_sem_expr(r: &mut ByteReader<'_>, depth: usize) -> Result<SemExpr, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(r.error("expression nesting too deep"));
    }
    match r.u8()? {
        0 => Ok(SemExpr::Loc(decode_loc(r)?)),
        1 => {
            let op = decode_bin_op(r)?;
            let a = decode_sem_expr(r, depth + 1)?;
            let b = decode_sem_expr(r, depth + 1)?;
            Ok(SemExpr::Bin(op, Box::new(a), Box::new(b)))
        }
        2 => {
            let op = decode_un_op(r)?;
            Ok(SemExpr::Un(op, Box::new(decode_sem_expr(r, depth + 1)?)))
        }
        t => Err(r.error(format!("bad semexpr tag {t}"))),
    }
}

fn encode_insn_kind(w: &mut ByteWriter, k: &InsnKind) {
    match k {
        InsnKind::Compute { dst, expr } => {
            w.u8(0);
            encode_loc(w, dst);
            encode_sem_expr(w, expr);
        }
        InsnKind::LoopStart { var, count } => {
            w.u8(1);
            encode_symbol(w, var);
            w.u32(*count);
        }
        InsnKind::LoopEnd => w.u8(2),
        InsnKind::Rpt { count } => {
            w.u8(3);
            w.u32(*count);
        }
        InsnKind::SetMode { mode, on } => {
            w.u8(4);
            w.u64(*mode as u64);
            w.bool(*on);
        }
        InsnKind::ArLoad { ar, base, disp } => {
            w.u8(5);
            w.u16(*ar);
            encode_symbol(w, base);
            w.i64(*disp);
        }
        InsnKind::ArAdd { ar, delta } => {
            w.u8(6);
            w.u16(*ar);
            w.i64(*delta);
        }
        InsnKind::ArLoadIndexed { ar, base, disp, index, down } => {
            w.u8(7);
            w.u16(*ar);
            encode_symbol(w, base);
            w.i64(*disp);
            encode_symbol(w, index);
            w.bool(*down);
        }
        InsnKind::ArLoadMem { ar, cell } => {
            w.u8(8);
            w.u16(*ar);
            encode_symbol(w, cell);
        }
        InsnKind::ArStore { ar, cell } => {
            w.u8(9);
            w.u16(*ar);
            encode_symbol(w, cell);
        }
        InsnKind::PtrInit { cell, base, disp } => {
            w.u8(10);
            encode_symbol(w, cell);
            encode_symbol(w, base);
            w.i64(*disp);
        }
        InsnKind::Nop => w.u8(11),
    }
}

fn decode_insn_kind(r: &mut ByteReader<'_>) -> Result<InsnKind, CodecError> {
    match r.u8()? {
        0 => {
            let dst = decode_loc(r)?;
            let expr = decode_sem_expr(r, 0)?;
            Ok(InsnKind::Compute { dst, expr })
        }
        1 => Ok(InsnKind::LoopStart { var: decode_symbol(r)?, count: r.u32()? }),
        2 => Ok(InsnKind::LoopEnd),
        3 => Ok(InsnKind::Rpt { count: r.u32()? }),
        4 => Ok(InsnKind::SetMode { mode: r.u64()? as usize, on: r.bool()? }),
        5 => Ok(InsnKind::ArLoad { ar: r.u16()?, base: decode_symbol(r)?, disp: r.i64()? }),
        6 => Ok(InsnKind::ArAdd { ar: r.u16()?, delta: r.i64()? }),
        7 => Ok(InsnKind::ArLoadIndexed {
            ar: r.u16()?,
            base: decode_symbol(r)?,
            disp: r.i64()?,
            index: decode_symbol(r)?,
            down: r.bool()?,
        }),
        8 => Ok(InsnKind::ArLoadMem { ar: r.u16()?, cell: decode_symbol(r)? }),
        9 => Ok(InsnKind::ArStore { ar: r.u16()?, cell: decode_symbol(r)? }),
        10 => Ok(InsnKind::PtrInit {
            cell: decode_symbol(r)?,
            base: decode_symbol(r)?,
            disp: r.i64()?,
        }),
        11 => Ok(InsnKind::Nop),
        t => Err(r.error(format!("bad insn kind tag {t}"))),
    }
}

fn encode_insn(w: &mut ByteWriter, insn: &Insn) {
    match insn.rule {
        None => w.u8(0),
        Some(rid) => {
            w.u8(1);
            w.u32(rid.0);
        }
    }
    encode_insn_kind(w, &insn.kind);
    w.str(&insn.text);
    w.u32(insn.words);
    w.u32(insn.cycles);
    w.u32(insn.units);
    w.bool(insn.mode_sensitive);
    match insn.mode_req {
        None => w.u8(0),
        Some((mode, on)) => {
            w.u8(1);
            w.u64(mode as u64);
            w.bool(on);
        }
    }
    w.u32(insn.parallel.len() as u32);
    for p in &insn.parallel {
        encode_insn(w, p);
    }
}

fn decode_insn(r: &mut ByteReader<'_>, depth: usize) -> Result<Insn, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(r.error("parallel nesting too deep"));
    }
    let rule = match r.u8()? {
        0 => None,
        1 => Some(RuleId(r.u32()?)),
        t => return Err(r.error(format!("bad option tag {t}"))),
    };
    let kind = decode_insn_kind(r)?;
    let text = r.str()?.to_string();
    let words = r.u32()?;
    let cycles = r.u32()?;
    let units = r.u32()?;
    let mode_sensitive = r.bool()?;
    let mode_req = match r.u8()? {
        0 => None,
        1 => Some((r.u64()? as usize, r.bool()?)),
        t => return Err(r.error(format!("bad option tag {t}"))),
    };
    let n = r.seq_len(1)?;
    let mut parallel = Vec::with_capacity(n);
    for _ in 0..n {
        parallel.push(decode_insn(r, depth + 1)?);
    }
    Ok(Insn { rule, kind, text, words, cycles, units, mode_sensitive, mode_req, parallel })
}

fn encode_layout(w: &mut ByteWriter, layout: &DataLayout) {
    let entries = layout.entries();
    w.u32(entries.len() as u32);
    for e in entries {
        encode_symbol(w, &e.sym);
        w.u16(e.addr);
        w.u32(e.len);
        encode_bank(w, e.bank);
    }
}

fn decode_layout(r: &mut ByteReader<'_>) -> Result<DataLayout, CodecError> {
    let n = r.seq_len(8)?;
    let mut entries = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n {
        let sym = decode_symbol(r)?;
        if !seen.insert(sym.clone()) {
            // `replace_entries` panics on duplicates; reject here so a
            // corrupted file decodes to an error, not a panic
            return Err(r.error(format!("duplicate layout symbol `{sym}`")));
        }
        let addr = r.u16()?;
        let len = r.u32()?;
        let bank = decode_bank(r)?;
        entries.push(LayoutEntry { sym, addr, len, bank });
    }
    let mut layout = DataLayout::new();
    layout.replace_entries(entries);
    Ok(layout)
}

fn encode_code(w: &mut ByteWriter, code: &Code) {
    w.u32(code.insns.len() as u32);
    for insn in &code.insns {
        encode_insn(w, insn);
    }
    encode_layout(w, &code.layout);
    w.str(&code.target);
    w.str(&code.name);
}

fn decode_code(r: &mut ByteReader<'_>) -> Result<Code, CodecError> {
    let n = r.seq_len(1)?;
    let mut insns = Vec::with_capacity(n);
    for _ in 0..n {
        insns.push(decode_insn(r, 0)?);
    }
    let layout = decode_layout(r)?;
    let target = r.str()?.to_string();
    let name = r.str()?.to_string();
    Ok(Code { insns, layout, target, name })
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_ir::fingerprint::program_fingerprint;

    fn lower(src: &str) -> Lir {
        record_ir::lower::lower(&record_ir::dfl::parse(src).unwrap()).unwrap()
    }

    fn compiled() -> (Lir, Code) {
        let src = "program p; const N = 4; in a: fix[N]; out y: fix; begin \
                   y := 0; for i in 0..N-1 loop y := y + a[i] * 3; end loop; end";
        let lir = lower(src);
        let compiler = crate::Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
        let code = compiler.compile(&lir).unwrap();
        (lir, code)
    }

    fn key_of(lir: &Lir) -> CacheKey {
        CacheKey { program: program_fingerprint(lir), target: 7, plan: 9 }
    }

    #[test]
    fn entry_round_trips_structurally() {
        let (lir, code) = compiled();
        let key = key_of(&lir);
        let bytes =
            codec::seal(CODE_MAGIC, CODE_VERSION, &encode_entry(&key, &lir, "tic25", &code));
        let (k2, lir2, tname, code2) = decode_entry(&bytes).unwrap();
        assert_eq!(k2, key);
        assert_eq!(lir2, lir);
        assert_eq!(tname, "tic25");
        assert_eq!(code2, code);
        assert_eq!(code2.render(), code.render());
    }

    #[test]
    fn every_bit_flip_is_rejected_or_equal() {
        // Any single-bit corruption must either fail the checksum/decode
        // or (if it flips a payload bit *and* the matching checksum bit —
        // impossible for one flip) be caught; it must never panic.
        let (lir, code) = compiled();
        let key = key_of(&lir);
        let bytes =
            codec::seal(CODE_MAGIC, CODE_VERSION, &encode_entry(&key, &lir, "tic25", &code));
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1;
            assert!(decode_entry(&bad).is_err(), "flip at byte {byte} accepted");
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let (lir, code) = compiled();
        let key = key_of(&lir);
        let bytes =
            codec::seal(CODE_MAGIC, CODE_VERSION, &encode_entry(&key, &lir, "tic25", &code));
        for len in 0..bytes.len() {
            assert!(decode_entry(&bytes[..len]).is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let (lir, code) = compiled();
        let mut cache = CompileCache::new(2);
        for plan in 0..3u64 {
            let key = CacheKey { plan, ..key_of(&lir) };
            cache.insert(key, &lir, "tic25", &code);
        }
        assert_eq!(cache.stats().evictions, 1);
        // oldest (plan 0) is gone, plan 1 and 2 remain
        assert!(cache.lookup(&CacheKey { plan: 0, ..key_of(&lir) }, &lir, "tic25").is_none());
        assert!(cache.lookup(&CacheKey { plan: 1, ..key_of(&lir) }, &lir, "tic25").is_some());
        assert!(cache.lookup(&CacheKey { plan: 2, ..key_of(&lir) }, &lir, "tic25").is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn colliding_fingerprint_is_refused_by_structural_equality() {
        let (lir, code) = compiled();
        let other = lower("program q; var x, y: fix; begin y := x + 1; end");
        let key = key_of(&lir);
        let mut cache = CompileCache::new(8);
        cache.insert(key, &lir, "tic25", &code);
        // same key, structurally different program → miss, not wrong code
        assert!(cache.lookup(&key, &other, "tic25").is_none());
        // same program under a different target name → miss too
        assert!(cache.lookup(&key, &lir, "dsp56k").is_none());
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.lookup(&key, &lir, "tic25").is_some());
    }

    #[test]
    fn disk_round_trip_and_corruption_as_miss() {
        let dir = std::env::temp_dir().join(format!("record-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (lir, code) = compiled();
        let key = key_of(&lir);

        let mut writer = CompileCache::new(8).with_dir(&dir);
        writer.insert(key, &lir, "tic25", &code);

        // a fresh cache (cold memory) reads it back from disk
        let mut reader = CompileCache::new(8).with_dir(&dir);
        assert_eq!(reader.lookup(&key, &lir, "tic25"), Some(code.clone()));
        assert_eq!(reader.stats().hits, 1);

        // corrupt the file: the entry becomes a miss, the file is deleted
        let path = dir.join(CompileCache::code_file_name(&key));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut cold = CompileCache::new(8).with_dir(&dir);
        assert!(cold.lookup(&key, &lir, "tic25").is_none());
        let s = cold.stats();
        assert_eq!((s.misses, s.corruptions), (1, 1));
        assert!(!path.exists(), "corrupt entry must be evicted from disk");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tables_store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("record-tables-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let target = record_isa::targets::tic25::target();
        let fp = target_fingerprint(&target);
        let built = Tables::build(&target);

        let mut cache = CompileCache::new(1).with_dir(&dir);
        assert!(cache.load_tables(fp, &target).is_none(), "nothing stored yet");
        cache.store_tables(fp, &built);
        let loaded = cache.load_tables(fp, &target).expect("stored tables load");
        assert_eq!(loaded, built);
        assert_eq!(cache.stats().tables_loaded, 1);

        // a truncated tables file is corruption: deleted, not an error
        let path = dir.join(CompileCache::tables_file_name(fp));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load_tables(fp, &target).is_none());
        assert_eq!(cache.stats().corruptions, 1);
        assert!(!path.exists());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

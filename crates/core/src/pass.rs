//! The pass manager: the pipeline of Fig. 2 as first-class objects.
//!
//! Each phase of the backend — constant folding, CSE/treeify, BURS
//! selection, storage layout, offset assignment, bank assignment, AGU
//! addressing, compaction, invariant hoisting, mode insertion, hardware
//! repeat — is a named [`Pass`] over a [`CompilationUnit`]. A
//! [`PassPlan`] is an ordered list of passes; plans are built from
//! [`CompileOptions`] (the backward-compatible path), from the `O0`/`O1`/
//! `O2` presets, or edited per pass by name ([`PassPlan::without`],
//! [`PassPlan::with_pass`]).
//!
//! In *strict* mode (the default in debug builds and tests) the runner
//! verifies the unit between passes: [`Code::verify`] plus each pass's
//! own [`Pass::postcondition`]. A pass that breaks a structural invariant
//! therefore fails at its own boundary — as
//! [`CompileError::Verify`] carrying the pass name — instead of
//! surfacing later in the simulator.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use record_burg::Tables;
use record_ir::lir::{Lir, LirItem, StorageKind, VarInfo};
use record_ir::transform::RuleSet;
use record_ir::{fold, AssignStmt, Bank, Symbol};
use record_isa::{AddrMode, Code, Insn, InsnKind, Loc, StructureError, TargetDesc};
use record_opt::compact::ScheduleMode;
use record_opt::modes::ModeStrategy;
use record_trace::SpanRecorder;

use crate::pipeline::{convert_rpt, order_vars, order_vars_budgeted, Budgets, CompileOptions};
use crate::select::Emitter;
use crate::timing::{CodeStats, PassRecord, PhaseTimings};
use crate::CompileError;

/// The state a compilation threads through the passes: the (rewritable)
/// LIR, the storage variables it accumulates, and the output [`Code`].
///
/// LIR-level passes (`fold`, `treeify`) rewrite [`lir`](Self::lir);
/// `select` consumes it into [`code`](Self::code); every later pass
/// rewrites `code` in place.
pub struct CompilationUnit<'a> {
    /// The target being compiled for.
    pub target: &'a TargetDesc,
    /// Shared BURS matcher tables for the target.
    pub tables: &'a Arc<Tables>,
    /// The program, in lowered form; LIR passes rewrite it.
    pub lir: Lir,
    /// Storage to lay out: program variables plus generated temporaries
    /// and spill scratch, in creation order.
    pub vars: Vec<VarInfo>,
    /// The output machine code (empty until `select` runs).
    pub code: Code,
    /// Statements selected (after tree decomposition).
    pub statements: usize,
    /// Tree variants enumerated across all statements.
    pub variants: usize,
    /// Variants that produced a legal cover.
    pub covered: usize,
    /// Resource caps the passes must respect (copied from the plan by
    /// the runner before the first pass executes).
    pub budgets: Budgets,
    /// The compile's span recorder. The runner opens one span per pass
    /// on it; passes may attach extra attributes or events (e.g. the
    /// search passes record `search_steps`). Disabled (a no-op) unless
    /// the driver installed an enabled recorder — see
    /// [`Compiler::compile_plan_traced`](crate::Compiler::compile_plan_traced).
    pub trace: SpanRecorder,
}

impl<'a> CompilationUnit<'a> {
    /// Fresh unit for compiling `lir` on `target`.
    pub fn new(target: &'a TargetDesc, tables: &'a Arc<Tables>, lir: &Lir) -> Self {
        CompilationUnit {
            target,
            tables,
            vars: lir.vars.clone(),
            code: Code {
                insns: Vec::new(),
                layout: Default::default(),
                target: target.name.clone(),
                name: lir.name.to_string(),
            },
            lir: lir.clone(),
            statements: 0,
            variants: 0,
            covered: 0,
            budgets: Budgets::unlimited(),
            trace: SpanRecorder::disabled(),
        }
    }
}

/// One named transformation of a [`CompilationUnit`].
pub trait Pass: Send + Sync {
    /// The registered name (used for display, enable/disable and
    /// [`CompileError::Verify`] attribution).
    fn name(&self) -> &'static str;

    /// Applies the pass.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] the underlying phase raises.
    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError>;

    /// Pass-specific invariant over the unit, checked *in addition to*
    /// [`Code::verify`] when the plan runs in strict mode.
    ///
    /// # Errors
    ///
    /// The violated invariant, attributed to this pass by the runner.
    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        let _ = unit;
        Ok(())
    }

    /// Whether the pass is a *best-effort* optimization the driver may
    /// drop to salvage a failing compile. Mandatory pipeline stages
    /// (and custom passes, by default) return `false`: their failure
    /// fails the compile outright.
    fn best_effort(&self) -> bool {
        false
    }
}

/// A declarative, ordered pass pipeline.
///
/// `PassPlan::from_options` reproduces exactly what the boolean knobs on
/// [`CompileOptions`] used to hard-wire; [`o0`](PassPlan::o0)/
/// [`o1`](PassPlan::o1)/[`o2`](PassPlan::o2) are conventional presets;
/// [`without`](PassPlan::without) and [`with_pass`](PassPlan::with_pass)
/// edit a plan per pass — the ablation bench drives every axis this way.
#[derive(Clone)]
pub struct PassPlan {
    passes: Vec<Arc<dyn Pass>>,
    strict: bool,
    budgets: Budgets,
    salvage: bool,
}

impl fmt::Debug for PassPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassPlan")
            .field("passes", &self.names())
            .field("strict", &self.strict)
            .field("budgets", &self.budgets)
            .field("salvage", &self.salvage)
            .finish()
    }
}

impl Default for PassPlan {
    fn default() -> Self {
        PassPlan::from_options(&CompileOptions::default())
    }
}

impl PassPlan {
    /// The plan equivalent to compiling with `opts` — the single source
    /// of truth the boolean-steered pipeline now delegates to.
    pub fn from_options(opts: &CompileOptions) -> Self {
        let mut passes: Vec<Arc<dyn Pass>> = Vec::new();
        if opts.fold_constants {
            passes.push(Arc::new(FoldPass));
        }
        if opts.cse {
            passes.push(Arc::new(TreeifyPass));
        }
        passes.push(Arc::new(SelectPass { rules: opts.rules, variant_limit: opts.variant_limit }));
        passes.push(Arc::new(LayoutPass));
        if opts.offset_assignment {
            passes.push(Arc::new(OffsetPass));
        }
        if opts.bank_assignment {
            passes.push(Arc::new(BanksPass));
        }
        passes.push(Arc::new(AddressPass));
        if opts.compact {
            passes.push(Arc::new(CompactPass { schedule: opts.schedule }));
            passes.push(Arc::new(HoistPass));
        }
        passes.push(Arc::new(ModesPass { strategy: opts.mode_strategy }));
        if opts.use_rpt {
            passes.push(Arc::new(RptPass));
        }
        PassPlan { passes, strict: cfg!(debug_assertions), budgets: opts.budgets, salvage: true }
    }

    /// `O0`: every optimization off — the naive macro-expander end of the
    /// ablation axis ([`CompileOptions::nothing`]).
    pub fn o0() -> Self {
        PassPlan::from_options(&CompileOptions::nothing())
    }

    /// `O1`: code-level optimizations (variants, CSE, compaction,
    /// hardware repeat) without the memory-layout ones (offset and bank
    /// assignment).
    pub fn o1() -> Self {
        PassPlan::from_options(&CompileOptions {
            offset_assignment: false,
            bank_assignment: false,
            ..CompileOptions::default()
        })
    }

    /// `O2`: everything on ([`CompileOptions::default`]).
    pub fn o2() -> Self {
        PassPlan::from_options(&CompileOptions::default())
    }

    /// Removes every pass named `name`. Unknown names are a no-op, so
    /// ablation axes compose freely.
    #[must_use]
    pub fn without(mut self, name: &str) -> Self {
        self.passes.retain(|p| p.name() != name);
        self
    }

    /// Appends a (possibly custom) pass to the end of the plan.
    #[must_use]
    pub fn with_pass(mut self, pass: Arc<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Replaces the pass named `name` in place (first match) or appends
    /// when absent.
    #[must_use]
    pub fn replacing(mut self, name: &str, pass: Arc<dyn Pass>) -> Self {
        match self.passes.iter().position(|p| p.name() == name) {
            Some(ix) => self.passes[ix] = pass,
            None => self.passes.push(pass),
        }
        self
    }

    /// Sets strict inter-pass verification explicitly (defaults to on in
    /// debug builds, off in release).
    #[must_use]
    pub fn strict(mut self, on: bool) -> Self {
        self.strict = on;
        self
    }

    /// Whether the runner verifies between passes.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Sets the resource caps the passes run under.
    #[must_use]
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// The resource caps the passes run under.
    pub fn budgets(&self) -> &Budgets {
        &self.budgets
    }

    /// Enables or disables graceful degradation: with salvaging on (the
    /// default), a failing *best-effort* pass is dropped and the plan
    /// retried by [`Compiler::compile_plan_timed`](crate::Compiler::compile_plan_timed)
    /// instead of failing the compile.
    #[must_use]
    pub fn salvaging(mut self, on: bool) -> Self {
        self.salvage = on;
        self
    }

    /// Whether the driver may drop failing best-effort passes.
    pub fn allows_salvage(&self) -> bool {
        self.salvage
    }

    /// This plan with every best-effort pass removed — the plainest
    /// (mandatory-stages-only) pipeline it can degrade to; used as the
    /// reference compile when validating salvaged output.
    #[must_use]
    pub fn mandatory_only(&self) -> Self {
        let mut plan = self.clone();
        plan.passes.retain(|p| !p.best_effort());
        plan
    }

    /// The registered pass names, in execution order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The passes themselves.
    pub fn passes(&self) -> &[Arc<dyn Pass>] {
        &self.passes
    }

    /// Runs the plan over `unit`, filling `timings` with one
    /// [`PassRecord`] per executed pass (plus the legacy phase buckets).
    ///
    /// Each pass runs inside `catch_unwind`: a panic is converted to
    /// [`CompileError::Internal`] naming the pass, so a poisoned kernel
    /// reports an error instead of unwinding through the caller (the
    /// unit may be left half-rewritten — rebuild it before retrying).
    ///
    /// # Errors
    ///
    /// The first pass failure, or — in strict mode — the first
    /// [`CompileError::Verify`] naming the pass whose output broke an
    /// invariant.
    pub fn run(
        &self,
        unit: &mut CompilationUnit<'_>,
        timings: &mut PhaseTimings,
    ) -> Result<(), CompileError> {
        self.run_inner(unit, timings).map_err(|f| f.error)
    }

    /// [`run`](PassPlan::run) keeping failure attribution: which pass
    /// failed and whether it was best-effort (salvageable). The salvage
    /// loop in `Compiler::compile_plan_timed` keys off this.
    pub(crate) fn run_inner(
        &self,
        unit: &mut CompilationUnit<'_>,
        timings: &mut PhaseTimings,
    ) -> Result<(), PassFailure> {
        unit.budgets = self.budgets;
        if let Some(cap) = self.budgets.max_lir_nodes {
            let nodes = lir_nodes(&unit.lir.body);
            if nodes > cap {
                unit.trace.event(
                    "budget-exceeded",
                    &[("pass", "pipeline".into()), ("resource", "lir-nodes".into())],
                );
                return Err(PassFailure::anonymous(CompileError::Budget {
                    pass: "pipeline".into(),
                    resource: "lir-nodes".into(),
                }));
            }
        }
        for pass in &self.passes {
            let before = CodeStats::of(&unit.code);
            unit.trace.open(pass.name());
            let t = Instant::now();
            let outcome =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pass.run(unit))) {
                    Ok(result) => result,
                    Err(payload) => Err(CompileError::Internal {
                        pass: pass.name().to_string(),
                        message: panic_message(payload.as_ref()),
                    }),
                };
            let time = t.elapsed();
            let outcome = outcome.and_then(|()| {
                if self.strict {
                    let attribute =
                        |error| CompileError::Verify { pass: pass.name().to_string(), error };
                    unit.code.verify().map_err(attribute)?;
                    pass.postcondition(unit).map_err(attribute)?;
                }
                Ok(())
            });
            let after = CodeStats::of(&unit.code);
            if unit.trace.is_enabled() {
                unit.trace.attr("insns_before", before.insns);
                unit.trace.attr("insns_after", after.insns);
                unit.trace.attr("words_before", before.words);
                unit.trace.attr("words_after", after.words);
                if let Err(error) = &outcome {
                    let event = match error {
                        CompileError::Budget { .. } => "budget-exceeded",
                        CompileError::Verify { .. } => "verify-failure",
                        CompileError::Internal { .. } => "pass-panic",
                        _ => "pass-error",
                    };
                    unit.trace.event(event, &[("error", error.to_string().into())]);
                    unit.trace.attr("error", error.to_string());
                }
            }
            unit.trace.close();
            outcome.map_err(|error| PassFailure {
                pass: Some(pass.name()),
                best_effort: pass.best_effort(),
                error,
            })?;
            timings.record_pass(PassRecord {
                name: pass.name().to_string(),
                time,
                runs: 1,
                before,
                after,
            });
        }
        if !self.strict {
            // the pre-pass-manager pipeline always verified the final
            // code; keep that guarantee even with inter-pass checks off
            unit.code.verify().map_err(|e| {
                PassFailure::anonymous(CompileError::Verify { pass: "pipeline".into(), error: e })
            })?;
        }
        timings.statements = unit.statements;
        timings.variants = unit.variants;
        timings.covered = unit.covered;
        timings.insns = unit.code.insns.len();
        Ok(())
    }
}

/// A pass failure with attribution, as produced by
/// [`PassPlan::run_inner`]: `pass` is `None` for failures outside any
/// single pass (the LIR-size gate, the final non-strict verify).
pub(crate) struct PassFailure {
    pub pass: Option<&'static str>,
    pub best_effort: bool,
    pub error: CompileError,
}

impl PassFailure {
    fn anonymous(error: CompileError) -> Self {
        PassFailure { pass: None, best_effort: false, error }
    }
}

/// Renders a caught panic payload (the `String`/`&str` cases cover
/// `panic!`/`assert!`; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Total tree-node count of a LIR body (the budgeted "DFG size").
fn lir_nodes(items: &[LirItem]) -> usize {
    fn tree_nodes(t: &record_ir::Tree) -> usize {
        match t {
            record_ir::Tree::Bin(_, a, b) => 1 + tree_nodes(a) + tree_nodes(b),
            record_ir::Tree::Un(_, a) => 1 + tree_nodes(a),
            _ => 1,
        }
    }
    items
        .iter()
        .map(|item| match item {
            LirItem::Assign(a) => 1 + tree_nodes(&a.src),
            LirItem::Loop { body, .. } => 1 + lir_nodes(body),
        })
        .sum()
}

/// A [`SearchBudget`](record_opt::SearchBudget) for one pass execution:
/// the given step cap plus the plan's per-pass wall-clock deadline.
fn search_budget(max_steps: Option<u64>, budgets: &Budgets) -> record_opt::SearchBudget {
    record_opt::SearchBudget::new(max_steps, budgets.pass_deadline.map(|d| Instant::now() + d))
}

// --------------------------------------------------------------------------
// The built-in passes
// --------------------------------------------------------------------------

/// Constant folding over the LIR ([`record_ir::fold`]). Off by default:
/// the paper measures RECORD without "standard optimization techniques".
struct FoldPass;

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        let width = unit.target.word_width;
        fn walk(items: &mut [LirItem], width: u32) {
            for item in items {
                match item {
                    LirItem::Assign(a) => a.src = fold::fold(&a.src, width),
                    LirItem::Loop { body, .. } => walk(body, width),
                }
            }
        }
        walk(&mut unit.lir.body, width);
        Ok(())
    }
}

/// Data-flow-graph construction and tree decomposition (CSE): shares
/// common subexpressions within each straight-line block, materializing
/// them as temporaries appended to the unit's storage.
struct TreeifyPass;

impl Pass for TreeifyPass {
    fn name(&self) -> &'static str {
        "treeify"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        let mut next_temp = 0usize;
        fn flush(
            block: &mut Vec<AssignStmt>,
            out: &mut Vec<LirItem>,
            next_temp: &mut usize,
            vars: &mut Vec<VarInfo>,
        ) {
            if block.is_empty() {
                return;
            }
            let (forest, next) = record_ir::treeify::treeify(block, *next_temp);
            *next_temp = next;
            block.clear();
            for t in &forest.temps {
                vars.push(VarInfo {
                    name: t.clone(),
                    len: 1,
                    kind: StorageKind::Var,
                    bank: None,
                    is_fix: true,
                });
            }
            out.extend(forest.assigns.into_iter().map(LirItem::Assign));
        }
        fn walk(
            items: Vec<LirItem>,
            next_temp: &mut usize,
            vars: &mut Vec<VarInfo>,
        ) -> Vec<LirItem> {
            let mut out = Vec::with_capacity(items.len());
            let mut block: Vec<AssignStmt> = Vec::new();
            for item in items {
                match item {
                    LirItem::Assign(a) => block.push(a),
                    LirItem::Loop { var, count, body } => {
                        flush(&mut block, &mut out, next_temp, vars);
                        let body = walk(body, next_temp, vars);
                        out.push(LirItem::Loop { var, count, body });
                    }
                }
            }
            flush(&mut block, &mut out, next_temp, vars);
            out
        }
        let body = std::mem::take(&mut unit.lir.body);
        unit.lir.body = walk(body, &mut next_temp, &mut unit.vars);
        Ok(())
    }
}

/// Variant enumeration, BURS covering and code emission — the heart of
/// the paper's retargetable selection (§4). Consumes the LIR into
/// [`CompilationUnit::code`]; spill scratch cells join the storage list.
struct SelectPass {
    rules: RuleSet,
    variant_limit: usize,
}

impl Pass for SelectPass {
    fn name(&self) -> &'static str {
        "select"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        let target = unit.target;
        let budgets = unit.budgets;
        let budget = search_budget(None, &budgets);
        let mut emitter = Emitter::with_tables(target, Arc::clone(unit.tables));
        let body = std::mem::take(&mut unit.lir.body);
        let mut insns: Vec<Insn> = Vec::new();
        let result = self.emit_rec(
            &body,
            target,
            &mut emitter,
            &mut insns,
            &mut unit.statements,
            &mut unit.variants,
            &mut unit.covered,
            &budget,
            budgets.max_variants,
        );
        unit.lir.body = body;
        unit.trace.attr("search_steps", budget.steps());
        result?;
        for s in emitter.scratch_symbols() {
            unit.vars.push(VarInfo {
                name: s.clone(),
                len: 1,
                kind: StorageKind::Var,
                bank: None,
                is_fix: true,
            });
        }
        unit.code.insns = insns;
        Ok(())
    }
}

impl SelectPass {
    #[allow(clippy::too_many_arguments)]
    fn emit_rec(
        &self,
        items: &[LirItem],
        target: &TargetDesc,
        emitter: &mut Emitter<'_>,
        out: &mut Vec<Insn>,
        statements: &mut usize,
        variants: &mut usize,
        covered: &mut usize,
        budget: &record_opt::SearchBudget,
        max_variants: Option<usize>,
    ) -> Result<(), CompileError> {
        let exceeded = |resource: &str| CompileError::Budget {
            pass: "select".into(),
            resource: resource.to_string(),
        };
        for item in items {
            match item {
                LirItem::Assign(stmt) => {
                    let (insns, stats) =
                        emitter.emit_assign(stmt, &self.rules, self.variant_limit, false)?;
                    *variants += stats.variants;
                    *covered += stats.covered;
                    *statements += 1;
                    out.extend(insns);
                    // one statement per charge: enough granularity for
                    // the per-pass deadline without touching the clock
                    // inside variant enumeration
                    budget
                        .charge(stats.variants.max(1) as u64)
                        .map_err(|e| exceeded(e.resource))?;
                    if max_variants.is_some_and(|cap| *variants > cap) {
                        return Err(exceeded("variants"));
                    }
                }
                LirItem::Loop { var, count, body } => {
                    let init = target.loop_ctrl.init_cost;
                    out.push(Insn::ctrl(
                        InsnKind::LoopStart { var: var.clone(), count: *count },
                        format!("LOOP #{count}"),
                        init.words,
                        init.cycles,
                    ));
                    self.emit_rec(
                        body,
                        target,
                        emitter,
                        out,
                        statements,
                        variants,
                        covered,
                        budget,
                        max_variants,
                    )?;
                    let end = target.loop_ctrl.end_cost;
                    out.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLP", end.words, end.cycles));
                }
            }
        }
        Ok(())
    }
}

/// Declaration-order storage layout: scalars first, then arrays, packed
/// from address zero per bank.
struct LayoutPass;

impl Pass for LayoutPass {
    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        let ordered = order_vars(&unit.vars, &unit.code, false);
        unit.code.layout = record_opt::layout_in_order(
            ordered.iter().map(|v| (v.name.clone(), v.len, v.bank)),
            unit.target,
        )?;
        Ok(())
    }

    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        placed(unit)
    }
}

/// Simple offset assignment: reorders scalars along the access sequence
/// (SOA) so auto-increment chains replace explicit pointer loads, then
/// rebuilds the layout in that order.
struct OffsetPass;

impl Pass for OffsetPass {
    fn name(&self) -> &'static str {
        "offset"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        let budget = search_budget(unit.budgets.max_search_steps, &unit.budgets);
        let result = order_vars_budgeted(&unit.vars, &unit.code, true, &budget);
        unit.trace.attr("search_steps", budget.steps());
        let ordered = result.map_err(|e| CompileError::Budget {
            pass: "offset".into(),
            resource: e.resource.into(),
        })?;
        unit.code.layout = record_opt::layout_in_order(
            ordered.iter().map(|v| (v.name.clone(), v.len, v.bank)),
            unit.target,
        )?;
        Ok(())
    }

    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        placed(unit)
    }

    fn best_effort(&self) -> bool {
        true
    }
}

/// Memory-bank assignment for dual-bank targets: places array operand
/// pairs in opposite banks so parallel moves can dual-fetch.
struct BanksPass;

impl Pass for BanksPass {
    fn name(&self) -> &'static str {
        "banks"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        if unit.target.memory.banks == 2 {
            let fixed: HashMap<Symbol, Bank> =
                unit.vars.iter().filter_map(|v| v.bank.map(|b| (v.name.clone(), b))).collect();
            let budget = search_budget(unit.budgets.max_search_steps, &unit.budgets);
            let result =
                record_opt::assign_banks_budgeted(&mut unit.code, unit.target, &fixed, &budget);
            unit.trace.attr("search_steps", budget.steps());
            result.map_err(|e| CompileError::Budget {
                pass: "banks".into(),
                resource: e.resource.into(),
            })?;
        }
        Ok(())
    }

    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        if unit.target.memory.banks < 2 {
            for entry in unit.code.layout.entries() {
                if entry.bank == Bank::Y {
                    return Err(StructureError::BadBank { sym: entry.sym.clone() });
                }
            }
        }
        placed(unit)
    }

    fn best_effort(&self) -> bool {
        true
    }
}

/// AGU addressing: resolves every symbolic memory operand to a direct or
/// register-indirect access, inserting address-register bookkeeping.
struct AddressPass;

impl Pass for AddressPass {
    fn name(&self) -> &'static str {
        "address"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        record_opt::assign_addresses(&mut unit.code, unit.target)?;
        Ok(())
    }

    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        // nothing may remain unresolved once addressing has run
        for (i, insn) in unit.code.insns.iter().enumerate() {
            if has_unresolved(insn) {
                return Err(StructureError::UnresolvedOperand { index: i });
            }
        }
        Ok(())
    }
}

/// Compaction: instruction fusion plus either list scheduling or
/// adjacent parallel-move packing, per the plan's [`ScheduleMode`].
struct CompactPass {
    schedule: Option<ScheduleMode>,
}

impl Pass for CompactPass {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        record_opt::fuse(&mut unit.code, unit.target);
        match self.schedule {
            Some(mode) => {
                let budget = search_budget(unit.budgets.max_schedule_steps, &unit.budgets);
                let result =
                    record_opt::schedule_budgeted(&mut unit.code, unit.target, mode, &budget);
                unit.trace.attr("search_steps", budget.steps());
                result.map_err(|e| CompileError::Budget {
                    pass: "compact".into(),
                    resource: e.resource.into(),
                })?;
            }
            None => {
                record_opt::pack_moves(&mut unit.code, unit.target);
            }
        }
        Ok(())
    }

    fn best_effort(&self) -> bool {
        true
    }
}

/// Loop-invariant prefix hoisting (runs only when compaction does, as in
/// the original pipeline).
struct HoistPass;

impl Pass for HoistPass {
    fn name(&self) -> &'static str {
        "hoist"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        record_opt::hoist_invariant_prefix(&mut unit.code);
        Ok(())
    }

    fn best_effort(&self) -> bool {
        true
    }
}

/// Residual control: inserts the mode-change instructions each
/// instruction's `mode_req` demands, lazily or per use.
struct ModesPass {
    strategy: ModeStrategy,
}

impl Pass for ModesPass {
    fn name(&self) -> &'static str {
        "modes"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        record_opt::insert_mode_changes(&mut unit.code, unit.target, self.strategy);
        Ok(())
    }

    fn postcondition(&self, unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
        verify_modes(&unit.code, unit.target)
    }

    fn best_effort(&self) -> bool {
        true
    }
}

/// Hardware-repeat conversion: single-instruction loops become
/// `RPT`-style zero-overhead repeats where the target supports them.
struct RptPass;

impl Pass for RptPass {
    fn name(&self) -> &'static str {
        "rpt"
    }

    fn run(&self, unit: &mut CompilationUnit<'_>) -> Result<(), CompileError> {
        convert_rpt(&mut unit.code, unit.target);
        Ok(())
    }

    fn best_effort(&self) -> bool {
        true
    }
}

// --------------------------------------------------------------------------
// Shared postcondition helpers
// --------------------------------------------------------------------------

/// Every memory operand's base symbol must be placed in the layout
/// (spill pointer cells are appended by the address pass itself, so this
/// holds after every layout-shaping pass).
fn placed(unit: &CompilationUnit<'_>) -> Result<(), StructureError> {
    for insn in &unit.code.insns {
        let mut err = None;
        visit_mems(insn, &mut |m| {
            if err.is_none() && unit.code.layout.entry(&m.base).is_none() {
                err = Some(StructureError::Unplaced { sym: m.base.clone() });
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(())
}

fn has_unresolved(insn: &Insn) -> bool {
    let mut any = false;
    visit_mems(insn, &mut |m| {
        if m.mode == AddrMode::Unresolved {
            any = true;
        }
    });
    any
}

fn visit_mems(insn: &Insn, f: &mut impl FnMut(&record_isa::MemLoc)) {
    if let InsnKind::Compute { dst, expr } = &insn.kind {
        for l in expr.reads() {
            if let Loc::Mem(m) = l {
                f(m);
            }
        }
        if let Loc::Mem(m) = dst {
            f(m);
        }
    }
    for p in &insn.parallel {
        visit_mems(p, f);
    }
}

/// Linear mode-state scan: starting from the target's power-on defaults,
/// every instruction's `mode_req` must hold under the `SetMode`s inserted
/// so far, and the state at each loop back edge must equal the state at
/// loop entry (otherwise iterations would run under varying modes).
fn verify_modes(code: &Code, target: &TargetDesc) -> Result<(), StructureError> {
    let mut state: Vec<bool> = target.modes.iter().map(|m| m.default_on).collect();
    let mut stack: Vec<Vec<bool>> = Vec::new();
    for (i, insn) in code.insns.iter().enumerate() {
        match &insn.kind {
            InsnKind::SetMode { mode, on } => match state.get_mut(*mode) {
                Some(slot) => *slot = *on,
                None => return Err(StructureError::UnknownMode { mode: *mode }),
            },
            InsnKind::LoopStart { .. } => stack.push(state.clone()),
            InsnKind::LoopEnd => {
                let entry = stack.pop().ok_or(StructureError::UnmatchedLoopEnd { index: i })?;
                if let Some(mode) = state.iter().zip(&entry).position(|(a, b)| a != b) {
                    return Err(StructureError::ModeLoopImbalance { index: i, mode });
                }
            }
            _ => {}
        }
        if let Some((mode, on)) = insn.mode_req {
            match state.get(mode) {
                Some(&actual) if actual == on => {}
                Some(_) => return Err(StructureError::ModeUnsatisfied { index: i, mode }),
                None => return Err(StructureError::UnknownMode { mode }),
            }
        }
    }
    Ok(())
}

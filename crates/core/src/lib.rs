//! RECORD — a retargetable compiler (generator) for DSP core processors.
//!
//! This crate is the reproduction of the system of Section 4.3 of
//! P. Marwedel, *"Code Generation for Core Processors"*, DAC 1997 — the
//! RECORD compiler, whose global flow (Fig. 2 of the paper) is:
//!
//! ```text
//!  DFL program ──parse──▶ flow graph ──treeify──▶ trees
//!                                                  │ algebraic variants
//!  processor model ──ISE──▶ instruction set        ▼
//!        (RT netlist or instruction set) ──▶ BURS matcher ──▶ cover
//!                                                  │
//!            compaction / address assignment / bank assignment /
//!                    mode minimization  ──▶ executable code
//! ```
//!
//! * [`Compiler`] is the generator: build one with
//!   [`Compiler::for_target`] from an explicit instruction-set description
//!   or with [`Compiler::from_netlist`] from an RT-level structural model
//!   (instruction-set extraction closes "the gap … between electronic CAD
//!   and compiler generation"),
//! * [`CompileOptions`] exposes every optimization the paper catalogues,
//!   each individually toggleable for the ablation benches,
//! * [`PassPlan`] is the pipeline itself as data: every backend phase is
//!   a named [`Pass`] over a [`CompilationUnit`]; plans are built from
//!   options, from the `O0`/`O1`/`O2` presets, or edited per pass by
//!   name, and in strict mode the runner verifies structural invariants
//!   between passes,
//! * [`Session`] is compilation as a service: a per-target compiler
//!   cache, a parallel batch driver, and the observability layer —
//!   attach a [`Tracer`] ([`Session::with_tracer`](Session::with_tracer))
//!   for per-compile span trees (exported as JSON-lines or Chrome
//!   trace-event format) and read [`Session::metrics`](Session::metrics)
//!   for counters/gauges/histograms in Prometheus text form,
//! * [`baseline`] is the *target-specific comparison compiler* standing in
//!   for the mid-90s TI C compiler of Table 1: no algebraic variants, no
//!   AGU streams, a memory-resident loop counter and per-access address
//!   arithmetic,
//! * [`handasm`] provides expert hand-assembly references for the ten
//!   DSPStone kernels (the 100 % line of Table 1),
//! * [`selftest`] generates processor self-test programs (Section 4.5),
//! * [`report`] regenerates Table 1.
//!
//! # Quickstart
//!
//! ```
//! use record::Compiler;
//!
//! let target = record_isa::targets::tic25::target();
//! let compiler = Compiler::for_target(target)?;
//! let code = compiler.compile_source(
//!     "program p;
//!      var a, b, y: fix;
//!      begin y := a + b * a; end",
//! )?;
//! assert!(code.size_words() > 0);
//! println!("{}", code.render());
//! # Ok::<(), record::CompileError>(())
//! ```

pub mod baseline;
pub mod cache;
pub mod emit;
pub mod handasm;
pub mod pass;
pub mod pipeline;
pub mod report;
pub mod select;
pub mod selftest;
pub mod session;
pub mod timing;

mod error;

pub use cache::{CacheKey, CacheStats, CompileCache, ScrubStats};
pub use error::{CompileError, TargetError};
pub use pass::{reference_select_pass, CompilationUnit, Pass, PassPlan};
pub use pipeline::{Budgets, CompileOptions, Compiler};
pub use record_trace::{
    span, AttrValue, Event, Metric, MetricsRegistry, Span, SpanRecorder, TraceRecord, Tracer,
};
pub use session::{Session, SessionStats};
pub use timing::{CodeStats, PassRecord, PhaseTimings, SalvageRecord};

//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. The
//! codec is deliberately tiny — it reuses [`record_trace::json`] for
//! parsing and string escaping, so the daemon adds no serialization
//! dependency. Every malformed input maps to a *documented* error code
//! (the table in `README.md`); nothing in this module panics on
//! hostile bytes.
//!
//! ```text
//! → {"op":"compile","id":"r1","target":"tic25","plan":"o2","deadline_ms":500,"program":"..."}
//! ← {"id":"r1","rid":"r-0000002a","status":"ok","code":"ok","target":"tic25","kernel":"fir","words":12,"insns":9,"elapsed_us":431,"asm":"..."}
//! ← {"id":"r1","rid":"r-0000002b","status":"error","code":"deadline","message":"..."}
//! ```
//!
//! `id` is the client's correlation id, echoed verbatim; `rid` is the
//! *server's* request id (`r-` + 8 hex digits), present on **every**
//! response — successes, errors, sheds, pings — and in the daemon's
//! access log and flight recorder, so a client-reported failure joins
//! against server-side records by `rid` alone.

use record::CompileError;
use record_trace::json::{self, Value};

/// Hard cap on one request line, bytes, including the newline. Longer
/// lines are rejected with [`codes::TOO_LARGE`] and the connection is
/// closed (the stream cannot be re-synchronized), which is the
/// allocation-bomb defense: the server never buffers more than this
/// per connection.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Cap on the DFL `program` field inside an otherwise valid request.
pub const MAX_PROGRAM_BYTES: usize = 256 * 1024;

/// The documented error-code vocabulary. Everything the daemon can say
/// went wrong is one of these strings; clients switch on them, so they
/// are API and pinned by `tests/serve.rs`.
pub mod codes {
    /// Admission queue full — retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// Request line or program exceeded a size cap.
    pub const TOO_LARGE: &str = "too-large";
    /// Unparseable JSON, wrong shape, or an unknown `op`.
    pub const BAD_REQUEST: &str = "bad-request";
    /// `target` names no known target.
    pub const UNKNOWN_TARGET: &str = "unknown-target";
    /// `plan` names no known pass-plan preset.
    pub const UNKNOWN_PLAN: &str = "unknown-plan";
    /// The `program` field is empty.
    pub const EMPTY_PROGRAM: &str = "empty-program";
    /// The wall-clock deadline expired (before or during compilation).
    pub const DEADLINE: &str = "deadline";
    /// A fault-injection panic (never emitted with faults off).
    pub const INJECTED: &str = "injected";
    /// A real pass panic — the bug class the soak gate hunts.
    pub const INTERNAL: &str = "internal";
    /// DFL parse / lowering error.
    pub const FRONTEND: &str = "frontend";
    /// No instruction cover for a statement on this target.
    pub const UNCOVERABLE: &str = "uncoverable";
    /// Register class exhausted.
    pub const OUT_OF_REGISTERS: &str = "out-of-registers";
    /// Data layout error.
    pub const LAYOUT: &str = "layout";
    /// Address assignment error.
    pub const ADDRESS: &str = "address";
    /// The target description itself is invalid.
    pub const TARGET: &str = "target";
    /// A pass broke a structural invariant under strict verification.
    pub const VERIFY: &str = "verify";
    /// A non-deadline resource budget was exhausted.
    pub const BUDGET: &str = "budget";
}

/// What the client asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Compile the carried DFL program.
    Compile,
    /// Liveness probe; answered with `{"status":"ok","code":"pong"}`.
    Ping,
}

/// A parsed, size-checked request. Target/plan names are still raw
/// strings here — resolution (and its error codes) happens in the
/// service layer so the codec stays I/O- and policy-free.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// The operation.
    pub op: Op,
    /// Target name (same vocabulary as `recordc --target`).
    pub target: String,
    /// Pass-plan preset: `default`, `o0`, `o1`, `o2` (case-insensitive).
    pub plan: String,
    /// Per-request wall-clock budget in milliseconds; the server default
    /// applies when absent.
    pub deadline_ms: Option<u64>,
    /// The DFL source text.
    pub program: String,
}

/// A protocol-level rejection: the documented code plus a human
/// message, carrying whatever `id` could be salvaged from the request.
#[derive(Clone, Debug)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail (never parsed by clients).
    pub message: String,
    /// The request id when one was readable, else empty.
    pub id: String,
}

impl ProtoError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError { code, message: message.into(), id: String::new() }
    }
}

/// Parses one request line. Every failure is a [`ProtoError`] with a
/// documented code — hostile bytes never panic and never escape as an
/// unlabeled error.
///
/// # Errors
///
/// [`codes::BAD_REQUEST`] for unparseable JSON / wrong shapes /
/// unknown ops, [`codes::TOO_LARGE`] when the program field exceeds
/// [`MAX_PROGRAM_BYTES`], [`codes::EMPTY_PROGRAM`] for a whitespace
/// only program on a compile op.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let value = json::parse(line)
        .map_err(|e| ProtoError::new(codes::BAD_REQUEST, format!("malformed JSON: {e}")))?;
    let Value::Object(_) = &value else {
        return Err(ProtoError::new(codes::BAD_REQUEST, "request must be a JSON object"));
    };
    let id = field_str(&value, "id").unwrap_or("").to_string();
    let with_id = |mut e: ProtoError| {
        e.id.clone_from(&id);
        e
    };

    let op = match field_str(&value, "op").unwrap_or("compile") {
        "compile" => Op::Compile,
        "ping" => Op::Ping,
        other => {
            return Err(with_id(ProtoError::new(
                codes::BAD_REQUEST,
                format!("unknown op `{}`", clip(other, 64)),
            )));
        }
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(ms) if ms.is_finite() && ms >= 0.0 => Some(ms.min(86_400_000.0) as u64),
            _ => {
                return Err(with_id(ProtoError::new(
                    codes::BAD_REQUEST,
                    "deadline_ms must be a non-negative number",
                )));
            }
        },
    };
    let program = field_str(&value, "program").unwrap_or("").to_string();
    if op == Op::Compile {
        if program.len() > MAX_PROGRAM_BYTES {
            return Err(with_id(ProtoError::new(
                codes::TOO_LARGE,
                format!("program is {} bytes (cap {MAX_PROGRAM_BYTES})", program.len()),
            )));
        }
        if program.trim().is_empty() {
            return Err(with_id(ProtoError::new(codes::EMPTY_PROGRAM, "program field is empty")));
        }
    }
    Ok(Request {
        id,
        op,
        target: field_str(&value, "target").unwrap_or("tic25").to_string(),
        plan: field_str(&value, "plan").unwrap_or("default").to_string(),
        deadline_ms,
        program,
    })
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Value::as_str)
}

fn clip(s: &str, max: usize) -> &str {
    let mut end = s.len().min(max);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Maps a [`CompileError`] onto the wire vocabulary. Budget errors
/// whose resource is `deadline` become [`codes::DEADLINE`]; a panic
/// whose payload carries the fault-injection marker becomes
/// [`codes::INJECTED`] so the soak gate can require zero *real*
/// internals while faults are being forced.
pub fn error_code(e: &CompileError) -> &'static str {
    match e {
        CompileError::Frontend(_) => codes::FRONTEND,
        CompileError::Uncoverable { .. } => codes::UNCOVERABLE,
        CompileError::OutOfRegisters { .. } => codes::OUT_OF_REGISTERS,
        CompileError::Layout(_) => codes::LAYOUT,
        CompileError::Address(_) => codes::ADDRESS,
        CompileError::Target(_) => codes::TARGET,
        CompileError::Verify { .. } => codes::VERIFY,
        CompileError::Internal { message, .. } => {
            if message.contains(crate::faults::FAULT_MARKER) {
                codes::INJECTED
            } else {
                codes::INTERNAL
            }
        }
        CompileError::Budget { resource, .. } => {
            if resource == "deadline" {
                codes::DEADLINE
            } else {
                codes::BUDGET
            }
        }
    }
}

/// Renders the success response line (without the trailing newline).
/// `rid` is the server-assigned request id (see the module docs).
#[allow(clippy::too_many_arguments)]
pub fn ok_response(
    id: &str,
    rid: &str,
    target: &str,
    kernel: &str,
    words: u32,
    insns: usize,
    elapsed_us: u64,
    asm: &str,
) -> String {
    let mut out = String::with_capacity(asm.len() + 128);
    out.push_str("{\"id\":");
    json::push_str_lit(&mut out, id);
    out.push_str(",\"rid\":");
    json::push_str_lit(&mut out, rid);
    out.push_str(",\"status\":\"ok\",\"code\":\"ok\",\"target\":");
    json::push_str_lit(&mut out, target);
    out.push_str(",\"kernel\":");
    json::push_str_lit(&mut out, kernel);
    out.push_str(&format!(",\"words\":{words},\"insns\":{insns},\"elapsed_us\":{elapsed_us}"));
    out.push_str(",\"asm\":");
    json::push_str_lit(&mut out, asm);
    out.push('}');
    debug_assert!(json::validate(&out).is_ok());
    out
}

/// Renders an error response line (without the trailing newline).
/// `rid` is the server-assigned request id (see the module docs).
pub fn error_response(id: &str, rid: &str, code: &str, message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 64);
    out.push_str("{\"id\":");
    json::push_str_lit(&mut out, id);
    out.push_str(",\"rid\":");
    json::push_str_lit(&mut out, rid);
    out.push_str(",\"status\":\"error\",\"code\":");
    json::push_str_lit(&mut out, code);
    out.push_str(",\"message\":");
    json::push_str_lit(&mut out, message);
    out.push('}');
    debug_assert!(json::validate(&out).is_ok());
    out
}

/// Renders the ping response line. `rid` is the server-assigned
/// request id (see the module docs).
pub fn pong(id: &str, rid: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"id\":");
    json::push_str_lit(&mut out, id);
    out.push_str(",\"rid\":");
    json::push_str_lit(&mut out, rid);
    out.push_str(",\"status\":\"ok\",\"code\":\"pong\"}");
    out
}

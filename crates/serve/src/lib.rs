//! Compile-as-a-service for the RECORD reproduction, with no
//! dependencies beyond `std`.
//!
//! `record-serve` wraps the [`record::Session`] compile engine in a
//! small, crash-only TCP daemon speaking line-delimited JSON: one
//! request line in, one response line out, plus an HTTP `/metrics`
//! Prometheus endpoint on the same port. The design goal is
//! *robustness under hostile traffic*, not throughput tricks — every
//! failure mode has an explicit, documented error code, and the
//! process survives anything a client (or an injected fault) throws at
//! it:
//!
//! - bounded admission with explicit `overloaded` shedding,
//! - per-request wall-clock deadlines enforced inside the pipeline,
//! - read timeouts and request-size caps (slow-loris / allocation-bomb
//!   defense),
//! - `catch_unwind` panic isolation per request and per connection,
//! - graceful drain on SIGTERM/SIGINT with a cache scrub, so the
//!   on-disk compile cache is loadable after any shutdown,
//! - deterministic fault injection ([`faults`]) for soak testing.
//!
//! The layering mirrors the testing strategy: [`protocol`] is the pure
//! codec, [`server::Service`] is the socket-free request engine the
//! table tests drive byte-by-byte, and [`server::Server`] is the thin
//! TCP front end the soak hammers.

pub mod faults;
pub mod protocol;
pub mod server;
pub mod signals;

pub use protocol::{codes, error_code, parse_request, Op, ProtoError, Request};
pub use server::{resolve_target, RequestMeta, ServeReport, Server, ServerConfig, Service};

//! Minimal signal-driven shutdown flag, with no `libc` crate.
//!
//! `std` already links the platform C library, so a plain `extern`
//! declaration of `signal(2)` is all the FFI needed. The handler does
//! the only thing that is async-signal-safe here: store into an
//! `AtomicBool` the accept loop polls. Non-Unix builds compile the
//! same API with installation as a no-op — tests and embedders drive
//! [`request_shutdown`] directly instead.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a drain has been requested (by signal or programmatically).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful drain, exactly as SIGTERM would.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag. For tests and embedders that run several server
/// lifecycles in one process; the daemon never calls this.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Installs the SIGTERM / SIGINT handlers (no-op off Unix). Safe to
/// call more than once.
pub fn install() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        let handler = on_signal as *const () as usize;
        // SAFETY: `signal` with a handler that only stores an atomic is
        // async-signal-safe; we never inspect the previous disposition.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

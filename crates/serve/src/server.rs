//! The daemon: bounded admission, worker pool, graceful drain.
//!
//! Architecture is deliberately boring: one nonblocking accept loop
//! feeding a bounded connection queue (`ConnQueue`), a fixed pool of
//! worker threads each serving whole connections, and a [`Service`]
//! that turns request lines into response lines with no I/O of its
//! own. The split matters for testing — `tests/serve.rs` drives
//! [`Service::handle_line`] directly with hostile bytes and never
//! opens a socket for the protocol table.
//!
//! Robustness invariants, each pinned by a test or the soak gate:
//!
//! - **Admission is bounded.** A full queue sheds at accept time with
//!   an explicit `overloaded` response; memory per connection is capped
//!   by [`crate::protocol::MAX_REQUEST_BYTES`].
//! - **Requests carry deadlines.** Every compile runs under a
//!   wall-clock deadline (client-supplied or the server default)
//!   enforced at pass boundaries by the core pipeline.
//! - **Panics never kill the process.** Request handling is wrapped in
//!   `catch_unwind` (as is each connection, belt and braces); a panic
//!   becomes an `internal` — or `injected`, for forced faults — error
//!   response.
//! - **Drain is crash-only.** Shutdown stops accepting, finishes
//!   in-flight requests, scrubs the on-disk cache (deleting anything a
//!   torn write left undecodable) and reports; the cache on disk is
//!   loadable afterwards by construction.
//! - **Every request is on the record.** An always-on, bounded-memory
//!   [`FlightRecorder`] keeps the last N requests — sheds, oversized
//!   lines and caught panics included — each under a server-assigned
//!   `rid` echoed in the wire response and the JSONL access log, with
//!   the queue-wait/read/compile/serialize latency split and the
//!   per-pass span tree. `GET /trace`, `GET /requests` and
//!   `GET /stats` serve it live on the HTTP façade.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use record::{Budgets, CompileCache, PassPlan, ScrubStats, Session};
use record_isa::TargetDesc;
use record_trace::metrics::Metric;
use record_trace::{FlightRecorder, MetricsRegistry, RequestRecord, SpanRecorder};

use crate::faults::{self, Fault, FaultInjector, FAULT_MARKER};
use crate::protocol::{self, codes, Op, Request};
use crate::signals;

/// Latency histogram bounds, microseconds.
const LATENCY_BOUNDS_US: &[f64] =
    &[100.0, 1_000.0, 10_000.0, 50_000.0, 100_000.0, 500_000.0, 1_000_000.0, 5_000_000.0];

/// Everything the daemon can be told at startup.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7425` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads, each serving whole connections.
    pub workers: usize,
    /// Admission-queue depth; accepted connections beyond it are shed.
    pub queue_depth: usize,
    /// Per-connection read (and write) timeout — the slow-loris bound.
    pub read_timeout: Duration,
    /// Wall-clock compile budget when a request names none.
    pub default_deadline: Duration,
    /// On-disk compile cache directory (shared by every plan session).
    pub cache_dir: Option<PathBuf>,
    /// Arms fault injection with this seed when set.
    pub fault_seed: Option<u64>,
    /// Roughly one fault per this many requests (when armed).
    pub fault_period: usize,
    /// Flight-recorder ring capacity: the last this-many requests stay
    /// resident for `/trace`, `/requests` and post-mortem dumps.
    pub flight_capacity: usize,
    /// Append-only JSONL access log (one line per request, the same
    /// format `/requests` serves); `None` disables the on-disk log.
    pub access_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7425".into(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(16)),
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            default_deadline: Duration::from_secs(2),
            cache_dir: None,
            fault_seed: None,
            fault_period: 16,
            flight_capacity: 512,
            access_log: None,
        }
    }
}

/// Resolves a target name from the shared `recordc`/`recordd`
/// vocabulary: `tic25`, `dsp56k`, `risc<N>`, `asip-dsp`, `asip-min`,
/// `asip-default`.
///
/// # Errors
///
/// A human-readable message naming the unknown target.
pub fn resolve_target(name: &str) -> Result<TargetDesc, String> {
    use record_isa::targets::{asip, dsp56k, simple_risc, tic25};
    match name {
        "tic25" => Ok(tic25::target()),
        "dsp56k" => Ok(dsp56k::target()),
        "asip-dsp" => Ok(asip::build(&asip::AsipParams::dsp())),
        "asip-min" => Ok(asip::build(&asip::AsipParams::minimal())),
        "asip-default" => Ok(asip::build(&asip::AsipParams::default())),
        other => {
            if let Some(n) = other.strip_prefix("risc") {
                let n: u16 = n.parse().map_err(|_| format!("bad register count in `{other}`"))?;
                if n == 0 {
                    return Err("risc needs at least one register".into());
                }
                return Ok(simple_risc::target(n));
            }
            Err(format!("unknown target `{other}`"))
        }
    }
}

/// One response line plus the code it carries (for accounting).
struct Reply {
    code: &'static str,
    line: String,
}

/// Connection-level context for one request, threaded from the socket
/// layer into [`Service::handle_request`] so flight-recorder records
/// carry the full latency split and the client address. `Default`
/// (unknown peer, lane 0, zero waits) is what direct in-process callers
/// get.
#[derive(Clone, Debug, Default)]
pub struct RequestMeta {
    /// Client address (`ip:port`), empty when unknown.
    pub peer: String,
    /// 1-based worker lane serving the connection (0 = off-worker, e.g.
    /// an accept-loop shed).
    pub lane: usize,
    /// Admission-queue wait attributed to this request, microseconds.
    pub queue_us: u64,
    /// Time spent reading the request line off the socket, microseconds.
    pub read_us: u64,
}

/// The request-level engine: sessions per plan preset, metrics, fault
/// injection. Pure request-line-in / response-line-out — all socket
/// handling lives in [`Server`], which is what lets the protocol table
/// test drive this directly.
pub struct Service {
    /// One session per plan preset, all sharing the disk cache dir.
    sessions: Vec<(&'static str, Session)>,
    metrics: MetricsRegistry,
    cache_dir: Option<PathBuf>,
    default_deadline: Duration,
    faults: Option<FaultInjector>,
    /// The always-on ring of completed request records.
    flight: FlightRecorder,
    /// Append-only JSONL access log, when configured.
    access_log: Option<Mutex<std::fs::File>>,
    started: Instant,
}

impl Service {
    /// Builds the engine: one [`Session`] per plan preset (`o0`, `o1`,
    /// `o2`; `default` aliases `o2`), every plan under
    /// [`Budgets::service`] caps, non-strict verification, and the
    /// shared on-disk cache when configured.
    ///
    /// # Errors
    ///
    /// Propagates failure to open the configured access-log file.
    pub fn new(config: &ServerConfig) -> io::Result<Self> {
        let presets: [(&'static str, PassPlan); 3] =
            [("o0", PassPlan::o0()), ("o1", PassPlan::o1()), ("o2", PassPlan::o2())];
        let sessions = presets
            .into_iter()
            .map(|(name, plan)| {
                let mut session =
                    Session::new().with_plan(plan.with_budgets(Budgets::service()).strict(false));
                if let Some(dir) = &config.cache_dir {
                    session = session.with_cache_dir(dir.clone());
                }
                (name, session)
            })
            .collect();
        let access_log = match &config.access_log {
            Some(path) => {
                Some(Mutex::new(std::fs::OpenOptions::new().create(true).append(true).open(path)?))
            }
            None => None,
        };
        // pre-register the unlabeled server counters so scrapers (and
        // the load_gen shed-accounting gate) see them at zero instead
        // of absent before the first connection/shed
        let metrics = MetricsRegistry::new();
        metrics.add("recordd_connections_total", 0);
        metrics.add("recordd_shed_total", 0);
        metrics.add("recordd_http_requests_total", 0);
        metrics.add("recordd_connection_panics_total", 0);
        metrics.add("recordd_accept_errors_total", 0);
        Ok(Service {
            sessions,
            metrics,
            cache_dir: config.cache_dir.clone(),
            default_deadline: config.default_deadline,
            faults: config.fault_seed.map(|seed| FaultInjector::new(seed, config.fault_period)),
            flight: FlightRecorder::new(config.flight_capacity),
            access_log,
            started: Instant::now(),
        })
    }

    /// The daemon-level metrics registry (`recordd_*` series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The flight recorder: the last N requests, live.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Handles one request line with no connection context — the
    /// in-process entry point tests drive directly. Equivalent to
    /// [`handle_request`](Service::handle_request) with a default
    /// [`RequestMeta`].
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_request(line, RequestMeta::default())
    }

    /// Handles one request line, never panicking: the whole handler
    /// runs under `catch_unwind` and a panic becomes an `internal` (or
    /// `injected`, when the payload carries the fault marker) error
    /// response. Every outcome — including the caught panic — lands in
    /// the flight recorder and the access log under a fresh `rid`, with
    /// `meta`'s latency split and the request's span tree attached.
    /// Also does the per-request accounting.
    pub fn handle_request(&self, line: &str, meta: RequestMeta) -> String {
        let started = Instant::now();
        let mut record = RequestRecord::new(self.flight.next_rid());
        record.peer = meta.peer;
        record.lane = meta.lane;
        record.queue_us = meta.queue_us;
        record.read_us = meta.read_us;
        record.start_us = self.flight.now_us();
        let rid = record.rid.clone();
        let mut rec = self.flight.recorder();
        let reply = panic::catch_unwind(AssertUnwindSafe(|| {
            self.handle_line_inner(line, &rid, &mut rec, &mut record)
        }))
        .unwrap_or_else(|payload| {
            let message = panic_text(payload.as_ref());
            let code =
                if message.contains(FAULT_MARKER) { codes::INJECTED } else { codes::INTERNAL };
            Reply { code, line: protocol::error_response("", &rid, code, &message) }
        });
        // a panic leaves spans open; finish() closes them with the
        // outcome attached so the record's tree is always well-formed
        let error = matches!(reply.code, codes::INTERNAL | codes::INJECTED).then_some(reply.code);
        let (spans, events) = rec.finish(error);
        record.spans = spans;
        record.events = events;
        record.code = reply.code.to_string();
        record.end_us = self.flight.now_us();
        self.record_request(record);
        self.metrics.inc_with("recordd_requests_total", &[("code", reply.code)]);
        self.metrics.observe(
            "recordd_request_latency_us",
            LATENCY_BOUNDS_US,
            started.elapsed().as_micros() as f64,
        );
        reply.line
    }

    /// Records and renders a wire-level rejection that never reaches the
    /// request handler (oversized line, non-UTF-8 bytes, admission
    /// shed): even these get a `rid`, a flight-recorder record and an
    /// access-log line, so *every* response a client can receive joins
    /// against a server-side record.
    pub fn reject_request(&self, meta: RequestMeta, code: &'static str, message: &str) -> String {
        let mut record = RequestRecord::new(self.flight.next_rid());
        record.peer = meta.peer;
        record.lane = meta.lane;
        record.queue_us = meta.queue_us;
        record.read_us = meta.read_us;
        record.start_us = self.flight.now_us();
        record.end_us = record.start_us;
        record.code = code.to_string();
        let line = protocol::error_response("", &record.rid, code, message);
        self.record_request(record);
        line
    }

    /// One record's two sinks: the access log (when configured) and the
    /// flight-recorder ring.
    fn record_request(&self, record: RequestRecord) {
        if let Some(log) = &self.access_log {
            let mut file = log.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writeln!(file, "{}", record.render_jsonl_line());
        }
        self.flight.record(record);
    }

    fn handle_line_inner(
        &self,
        line: &str,
        rid: &str,
        rec: &mut SpanRecorder,
        record: &mut RequestRecord,
    ) -> Reply {
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                return Reply {
                    code: e.code,
                    line: protocol::error_response(&e.id, rid, e.code, &e.message),
                };
            }
        };
        match request.op {
            Op::Ping => Reply { code: "pong", line: protocol::pong(&request.id, rid) },
            Op::Compile => self.handle_compile(&request, rid, rec, record),
        }
    }

    fn handle_compile(
        &self,
        request: &Request,
        rid: &str,
        rec: &mut SpanRecorder,
        record: &mut RequestRecord,
    ) -> Reply {
        let started = Instant::now();
        record.target = request.target.clone();
        record.plan = request.plan.clone();
        let deadline =
            started + request.deadline_ms.map_or(self.default_deadline, Duration::from_millis);
        if let Some(injector) = &self.faults {
            if let Some(fault) = injector.draw() {
                self.metrics.inc_with("recordd_faults_injected_total", &[("kind", fault.kind())]);
                self.apply_fault(injector, fault, deadline);
            }
        }
        let Some(session) = self.session_for(&request.plan) else {
            let message = format!("unknown plan `{}` (default|o0|o1|o2)", clip(&request.plan));
            return Reply {
                code: codes::UNKNOWN_PLAN,
                line: protocol::error_response(&request.id, rid, codes::UNKNOWN_PLAN, &message),
            };
        };
        let target = match resolve_target(&request.target) {
            Ok(t) => t,
            Err(message) => {
                return Reply {
                    code: codes::UNKNOWN_TARGET,
                    line: protocol::error_response(
                        &request.id,
                        rid,
                        codes::UNKNOWN_TARGET,
                        &message,
                    ),
                };
            }
        };
        let t_compile = Instant::now();
        let result =
            session.compile_source_deadline_recorded(&target, &request.program, deadline, rec);
        record.compile_us = t_compile.elapsed().as_micros() as u64;
        match result {
            Ok((code, timings)) => {
                record.kernel = code.name.to_string();
                record.cache_hit = timings.from_cache;
                let elapsed_us = started.elapsed().as_micros() as u64;
                let t_serialize = Instant::now();
                let line = protocol::ok_response(
                    &request.id,
                    rid,
                    &request.target,
                    &code.name,
                    code.size_words(),
                    code.len(),
                    elapsed_us,
                    &code.render(),
                );
                record.serialize_us = t_serialize.elapsed().as_micros() as u64;
                Reply { code: "ok", line }
            }
            Err(e) => {
                let code = protocol::error_code(&e);
                Reply {
                    code,
                    line: protocol::error_response(&request.id, rid, code, &e.to_string()),
                }
            }
        }
    }

    fn apply_fault(&self, injector: &FaultInjector, fault: Fault, deadline: Instant) {
        match fault {
            Fault::Panic => panic!("{FAULT_MARKER}: forced request panic"),
            Fault::Stall(extra_ms) => {
                // sleep just past the request deadline so the pipeline's
                // wall-clock budget machinery is what surfaces the fault
                let past_deadline = deadline.saturating_duration_since(Instant::now())
                    + Duration::from_millis(extra_ms);
                std::thread::sleep(past_deadline.min(Duration::from_millis(1_500)));
            }
            Fault::TornCache => {
                if let Some(dir) = &self.cache_dir {
                    faults::tear_cache_file(injector, dir);
                }
            }
        }
    }

    fn session_for(&self, plan: &str) -> Option<&Session> {
        let name = match plan.to_ascii_lowercase().as_str() {
            "default" | "o2" => "o2",
            "o0" => "o0",
            "o1" => "o1",
            _ => return None,
        };
        self.sessions.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Renders the full Prometheus exposition: the daemon's own
    /// `recordd_*` series followed by the per-plan sessions merged into
    /// one `record_*`/`trace_*` view.
    pub fn render_metrics(&self) -> String {
        let merged = MetricsRegistry::new();
        for (_, session) in &self.sessions {
            merged.merge(session.metrics());
        }
        let mut out = self.metrics.render_prometheus();
        out.push_str(&merged.render_prometheus());
        out
    }

    /// Drain-time cache scrub: decode-checks every on-disk entry and
    /// deletes anything a torn write left unloadable. `None` when the
    /// daemon runs without a disk cache.
    pub fn scrub(&self) -> Option<ScrubStats> {
        self.cache_dir.as_deref().map(CompileCache::scrub_dir)
    }

    /// One JSON object describing the whole daemon right now: uptime,
    /// server counters, request/compile latency quantiles, per-plan
    /// session stats and the flight recorder's accounting. Served as
    /// `GET /stats`.
    pub fn render_stats(&self) -> String {
        let merged = MetricsRegistry::new();
        for (_, session) in &self.sessions {
            merged.merge(session.metrics());
        }
        let (req_p50, req_p90, req_p99) =
            histogram_quantiles(&self.metrics, "recordd_request_latency_us");
        let (cmp_p50, cmp_p90, cmp_p99) = histogram_quantiles(&merged, "record_compile_latency_us");
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"uptime_us\":{},\"server\":{{\"connections\":{},\"requests\":{},\"shed\":{},\
             \"http_requests\":{},\"connection_panics\":{}}}",
            self.started.elapsed().as_micros() as u64,
            self.metrics.counter("recordd_connections_total"),
            self.metrics.counter_sum("recordd_requests_total"),
            self.metrics.counter("recordd_shed_total"),
            self.metrics.counter("recordd_http_requests_total"),
            self.metrics.counter("recordd_connection_panics_total"),
        ));
        out.push_str(&format!(
            ",\"request_latency_us\":{{\"p50\":{req_p50},\"p90\":{req_p90},\"p99\":{req_p99}}}\
             ,\"compile_latency_us\":{{\"p50\":{cmp_p50},\"p90\":{cmp_p90},\"p99\":{cmp_p99}}}"
        ));
        out.push_str(",\"sessions\":[");
        for (i, (name, session)) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = session.stats();
            out.push_str(&format!(
                "{{\"plan\":\"{name}\",\"compiles\":{},\"table_hits\":{},\"table_misses\":{},\
                 \"code_hits\":{},\"code_misses\":{},\"salvaged_passes\":{}}}",
                s.compiles, s.hits, s.misses, s.code_hits, s.code_misses, s.salvaged_passes,
            ));
        }
        out.push_str("],\"flight\":");
        out.push_str(&self.flight.render_stats_json());
        out.push('}');
        debug_assert!(record_trace::json::validate(&out).is_ok());
        out
    }
}

/// p50/p90/p99 of a histogram metric (linear interpolation within its
/// fixed buckets), or zeros when the metric is absent or empty.
fn histogram_quantiles(metrics: &MetricsRegistry, name: &str) -> (f64, f64, f64) {
    match metrics.get(name) {
        Some(Metric::Histogram(h)) => (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)),
        _ => (0.0, 0.0, 0.0),
    }
}

fn clip(s: &str) -> &str {
    let mut end = s.len().min(64);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// What a completed serve lifecycle did, for the drain summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted (shed ones included).
    pub connections: u64,
    /// Requests answered, across every response code.
    pub requests: u64,
    /// Connections shed with `overloaded` at admission.
    pub shed: u64,
    /// Connection handlers that panicked outside request handling.
    pub connection_panics: u64,
    /// Drain-time cache scrub result (when a disk cache is configured).
    pub scrub: Option<ScrubStats>,
    /// Request-latency quantiles (µs) over the whole run, estimated by
    /// linear interpolation within the latency histogram's buckets.
    pub request_p50_us: f64,
    /// See [`request_p50_us`](ServeReport::request_p50_us).
    pub request_p90_us: f64,
    /// See [`request_p50_us`](ServeReport::request_p50_us).
    pub request_p99_us: f64,
}

/// Bounded connection queue: accept pushes, workers pop, shutdown
/// closes. Closing wakes every worker; pops keep draining queued
/// connections after close so accepted clients are never dropped
/// unserved.
struct ConnQueue {
    state: Mutex<ConnQueueState>,
    ready: Condvar,
    depth: usize,
}

struct ConnQueueState {
    /// Each stream is stamped at admission so the worker that pops it
    /// can attribute the queue wait to the connection's first request.
    items: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        ConnQueue {
            state: Mutex::new(ConnQueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Returns the stream back (for shedding) when the queue is full or
    /// closed; reports the new depth otherwise.
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed || state.items.len() >= self.depth {
            return Err(stream);
        }
        state.items.push_back((stream, Instant::now()));
        let len = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(len)
    }

    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(entry) = state.items.pop_front() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).items.len()
    }
}

/// The TCP front end around a [`Service`].
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listen socket and builds the service.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(Service::new(&config)?);
        Ok(Server { listener, service, config })
    }

    /// The bound address (useful after binding port `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The request engine, for embedders that want metrics access while
    /// the server runs on another thread.
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Runs until [`signals::request_shutdown`] (or SIGTERM/SIGINT once
    /// [`signals::install`] was called), then drains: stops accepting,
    /// serves every queued and in-flight connection to completion,
    /// scrubs the disk cache, and returns the lifecycle report.
    pub fn run(self) -> ServeReport {
        let queue = ConnQueue::new(self.config.queue_depth);
        let service = &self.service;
        let config = &self.config;
        std::thread::scope(|scope| {
            let queue = &queue;
            // lanes are 1-based so lane 0 can mean "off-worker" in
            // flight-recorder records (accept-loop sheds)
            for lane in 1..=config.workers.max(1) {
                scope.spawn(move || worker_loop(queue, service, config, lane));
            }
            accept_loop(&self.listener, queue, service, config);
            queue.close();
            // scoped threads join here: drain completes before we return
        });
        let scrub = self.service.scrub();
        let metrics = self.service.metrics();
        let (request_p50_us, request_p90_us, request_p99_us) =
            histogram_quantiles(metrics, "recordd_request_latency_us");
        ServeReport {
            connections: metrics.counter("recordd_connections_total"),
            requests: metrics.counter_sum("recordd_requests_total"),
            shed: metrics.counter("recordd_shed_total"),
            connection_panics: metrics.counter("recordd_connection_panics_total"),
            scrub,
            request_p50_us,
            request_p90_us,
            request_p99_us,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &ConnQueue,
    service: &Service,
    config: &ServerConfig,
) {
    while !signals::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                service.metrics().inc("recordd_connections_total");
                match queue.push(stream) {
                    Ok(depth) => {
                        service.metrics().set_gauge("recordd_queue_depth", depth as f64);
                    }
                    Err(stream) => shed(service, stream, config),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                service.metrics().inc("recordd_accept_errors_total");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Explicit-rejection load shedding: the client gets one `overloaded`
/// line (with a `rid`, and a flight-recorder record behind it) and a
/// clean close instead of a hung or reset connection.
fn shed(service: &Service, mut stream: TcpStream, config: &ServerConfig) {
    service.metrics().inc("recordd_shed_total");
    let _ = stream.set_write_timeout(Some(config.read_timeout.min(Duration::from_secs(1))));
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
    let meta = RequestMeta { peer, ..RequestMeta::default() };
    let line = service.reject_request(meta, codes::OVERLOADED, "admission queue full, retry later");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

fn worker_loop(queue: &ConnQueue, service: &Service, config: &ServerConfig, lane: usize) {
    while let Some((stream, enqueued)) = queue.pop() {
        service.metrics().set_gauge("recordd_queue_depth", queue.len() as f64);
        let queue_us = enqueued.elapsed().as_micros() as u64;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            serve_connection(service, config, stream, lane, queue_us);
        }));
        if outcome.is_err() {
            service.metrics().inc("recordd_connection_panics_total");
        }
    }
}

enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; the stream cannot be re-synchronized.
    TooLong,
    /// Clean end of stream.
    Eof,
    /// Read error — timeouts (slow loris) and resets land here.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max` bytes. The bound is
/// enforced *while reading*: a hostile peer can never make the server
/// buffer more than `max` bytes, no matter how much it sends.
fn read_line_bounded(reader: &mut impl BufRead, max: usize, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() { LineRead::Eof } else { LineRead::Line };
        }
        if let Some(ix) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + ix > max {
                return LineRead::TooLong;
            }
            buf.extend_from_slice(&chunk[..ix]);
            reader.consume(ix + 1);
            return LineRead::Line;
        }
        let n = chunk.len();
        if buf.len() + n > max {
            return LineRead::TooLong;
        }
        buf.extend_from_slice(chunk);
        reader.consume(n);
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn serve_connection(
    service: &Service,
    config: &ServerConfig,
    stream: TcpStream,
    lane: usize,
    queue_us: u64,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();
    // the admission wait belongs to the connection's first request only
    let mut queue_us = queue_us;
    loop {
        let t_read = Instant::now();
        let read = read_line_bounded(&mut reader, protocol::MAX_REQUEST_BYTES, &mut buf);
        let meta = RequestMeta {
            peer: peer.clone(),
            lane,
            queue_us: std::mem::take(&mut queue_us),
            read_us: t_read.elapsed().as_micros() as u64,
        };
        match read {
            LineRead::Eof | LineRead::Failed => break,
            LineRead::TooLong => {
                service.metrics().inc_with("recordd_requests_total", &[("code", codes::TOO_LARGE)]);
                let line = service.reject_request(
                    meta,
                    codes::TOO_LARGE,
                    &format!("request line exceeds {} bytes", protocol::MAX_REQUEST_BYTES),
                );
                let _ = write_line(&mut writer, &line);
                break; // cannot re-synchronize a half-read line
            }
            LineRead::Line => {
                if buf.starts_with(b"GET ") {
                    serve_http(service, &mut reader, &mut writer, &buf);
                    break;
                }
                let response = match std::str::from_utf8(&buf) {
                    Ok(line) => service.handle_request(line.trim_end(), meta),
                    Err(_) => {
                        service
                            .metrics()
                            .inc_with("recordd_requests_total", &[("code", codes::BAD_REQUEST)]);
                        service.reject_request(meta, codes::BAD_REQUEST, "request is not UTF-8")
                    }
                };
                if write_line(&mut writer, &response).is_err() {
                    break; // abrupt disconnect mid-response
                }
            }
        }
        if signals::shutdown_requested() {
            break; // finish the in-flight request, then drain
        }
    }
}

/// A minimal HTTP/1.0 responder so `curl http://…/metrics` works on
/// the same port. `GET /metrics`, `GET /healthz`, and the flight
/// recorder's live views: `GET /trace` (Perfetto-loadable Chrome trace
/// of the last N requests), `GET /requests` (the access-log ring as
/// JSONL) and `GET /stats` (one structured JSON snapshot). The
/// connection always closes after one response.
fn serve_http(
    service: &Service,
    reader: &mut impl BufRead,
    writer: &mut TcpStream,
    request_line: &[u8],
) {
    service.metrics().inc("recordd_http_requests_total");
    // drain the (bounded) header block so the peer sees a clean close
    let mut header = Vec::new();
    for _ in 0..100 {
        match read_line_bounded(reader, 8 * 1024, &mut header) {
            LineRead::Line if !header.is_empty() && header != b"\r" => {}
            _ => break,
        }
    }
    let path = request_line
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|p| std::str::from_utf8(p).ok())
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", service.render_metrics()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/trace" => ("200 OK", "application/json", service.flight().render_chrome_trace()),
        "/requests" => ("200 OK", "application/x-ndjson", service.flight().render_requests_jsonl()),
        "/stats" => ("200 OK", "application/json", service.render_stats()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(head.as_bytes());
    let _ = writer.write_all(body.as_bytes());
    let _ = writer.flush();
}

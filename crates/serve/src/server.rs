//! The daemon: bounded admission, worker pool, graceful drain.
//!
//! Architecture is deliberately boring: one nonblocking accept loop
//! feeding a bounded connection queue (`ConnQueue`), a fixed pool of
//! worker threads each serving whole connections, and a [`Service`]
//! that turns request lines into response lines with no I/O of its
//! own. The split matters for testing — `tests/serve.rs` drives
//! [`Service::handle_line`] directly with hostile bytes and never
//! opens a socket for the protocol table.
//!
//! Robustness invariants, each pinned by a test or the soak gate:
//!
//! - **Admission is bounded.** A full queue sheds at accept time with
//!   an explicit `overloaded` response; memory per connection is capped
//!   by [`crate::protocol::MAX_REQUEST_BYTES`].
//! - **Requests carry deadlines.** Every compile runs under a
//!   wall-clock deadline (client-supplied or the server default)
//!   enforced at pass boundaries by the core pipeline.
//! - **Panics never kill the process.** Request handling is wrapped in
//!   `catch_unwind` (as is each connection, belt and braces); a panic
//!   becomes an `internal` — or `injected`, for forced faults — error
//!   response.
//! - **Drain is crash-only.** Shutdown stops accepting, finishes
//!   in-flight requests, scrubs the on-disk cache (deleting anything a
//!   torn write left undecodable) and reports; the cache on disk is
//!   loadable afterwards by construction.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use record::{Budgets, CompileCache, PassPlan, ScrubStats, Session};
use record_isa::TargetDesc;
use record_trace::MetricsRegistry;

use crate::faults::{self, Fault, FaultInjector, FAULT_MARKER};
use crate::protocol::{self, codes, Op, Request};
use crate::signals;

/// Latency histogram bounds, microseconds.
const LATENCY_BOUNDS_US: &[f64] =
    &[100.0, 1_000.0, 10_000.0, 50_000.0, 100_000.0, 500_000.0, 1_000_000.0, 5_000_000.0];

/// Everything the daemon can be told at startup.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7425` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads, each serving whole connections.
    pub workers: usize,
    /// Admission-queue depth; accepted connections beyond it are shed.
    pub queue_depth: usize,
    /// Per-connection read (and write) timeout — the slow-loris bound.
    pub read_timeout: Duration,
    /// Wall-clock compile budget when a request names none.
    pub default_deadline: Duration,
    /// On-disk compile cache directory (shared by every plan session).
    pub cache_dir: Option<PathBuf>,
    /// Arms fault injection with this seed when set.
    pub fault_seed: Option<u64>,
    /// Roughly one fault per this many requests (when armed).
    pub fault_period: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7425".into(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(16)),
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            default_deadline: Duration::from_secs(2),
            cache_dir: None,
            fault_seed: None,
            fault_period: 16,
        }
    }
}

/// Resolves a target name from the shared `recordc`/`recordd`
/// vocabulary: `tic25`, `dsp56k`, `risc<N>`, `asip-dsp`, `asip-min`,
/// `asip-default`.
///
/// # Errors
///
/// A human-readable message naming the unknown target.
pub fn resolve_target(name: &str) -> Result<TargetDesc, String> {
    use record_isa::targets::{asip, dsp56k, simple_risc, tic25};
    match name {
        "tic25" => Ok(tic25::target()),
        "dsp56k" => Ok(dsp56k::target()),
        "asip-dsp" => Ok(asip::build(&asip::AsipParams::dsp())),
        "asip-min" => Ok(asip::build(&asip::AsipParams::minimal())),
        "asip-default" => Ok(asip::build(&asip::AsipParams::default())),
        other => {
            if let Some(n) = other.strip_prefix("risc") {
                let n: u16 = n.parse().map_err(|_| format!("bad register count in `{other}`"))?;
                if n == 0 {
                    return Err("risc needs at least one register".into());
                }
                return Ok(simple_risc::target(n));
            }
            Err(format!("unknown target `{other}`"))
        }
    }
}

/// One response line plus the code it carries (for accounting).
struct Reply {
    code: &'static str,
    line: String,
}

/// The request-level engine: sessions per plan preset, metrics, fault
/// injection. Pure request-line-in / response-line-out — all socket
/// handling lives in [`Server`], which is what lets the protocol table
/// test drive this directly.
pub struct Service {
    /// One session per plan preset, all sharing the disk cache dir.
    sessions: Vec<(&'static str, Session)>,
    metrics: MetricsRegistry,
    cache_dir: Option<PathBuf>,
    default_deadline: Duration,
    faults: Option<FaultInjector>,
}

impl Service {
    /// Builds the engine: one [`Session`] per plan preset (`o0`, `o1`,
    /// `o2`; `default` aliases `o2`), every plan under
    /// [`Budgets::service`] caps, non-strict verification, and the
    /// shared on-disk cache when configured.
    pub fn new(config: &ServerConfig) -> Self {
        let presets: [(&'static str, PassPlan); 3] =
            [("o0", PassPlan::o0()), ("o1", PassPlan::o1()), ("o2", PassPlan::o2())];
        let sessions = presets
            .into_iter()
            .map(|(name, plan)| {
                let mut session =
                    Session::new().with_plan(plan.with_budgets(Budgets::service()).strict(false));
                if let Some(dir) = &config.cache_dir {
                    session = session.with_cache_dir(dir.clone());
                }
                (name, session)
            })
            .collect();
        Service {
            sessions,
            metrics: MetricsRegistry::new(),
            cache_dir: config.cache_dir.clone(),
            default_deadline: config.default_deadline,
            faults: config.fault_seed.map(|seed| FaultInjector::new(seed, config.fault_period)),
        }
    }

    /// The daemon-level metrics registry (`recordd_*` series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Handles one request line, never panicking: the whole handler
    /// runs under `catch_unwind` and a panic becomes an `internal` (or
    /// `injected`, when the payload carries the fault marker) error
    /// response. Also does the per-request accounting.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        let reply = panic::catch_unwind(AssertUnwindSafe(|| self.handle_line_inner(line)))
            .unwrap_or_else(|payload| {
                let message = panic_text(payload.as_ref());
                let code =
                    if message.contains(FAULT_MARKER) { codes::INJECTED } else { codes::INTERNAL };
                Reply { code, line: protocol::error_response("", code, &message) }
            });
        self.metrics.inc_with("recordd_requests_total", &[("code", reply.code)]);
        self.metrics.observe(
            "recordd_request_latency_us",
            LATENCY_BOUNDS_US,
            started.elapsed().as_micros() as f64,
        );
        reply.line
    }

    fn handle_line_inner(&self, line: &str) -> Reply {
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                return Reply {
                    code: e.code,
                    line: protocol::error_response(&e.id, e.code, &e.message),
                };
            }
        };
        match request.op {
            Op::Ping => Reply { code: "pong", line: protocol::pong(&request.id) },
            Op::Compile => self.handle_compile(&request),
        }
    }

    fn handle_compile(&self, request: &Request) -> Reply {
        let started = Instant::now();
        let deadline =
            started + request.deadline_ms.map_or(self.default_deadline, Duration::from_millis);
        if let Some(injector) = &self.faults {
            if let Some(fault) = injector.draw() {
                self.metrics.inc_with("recordd_faults_injected_total", &[("kind", fault.kind())]);
                self.apply_fault(injector, fault, deadline);
            }
        }
        let Some(session) = self.session_for(&request.plan) else {
            let message = format!("unknown plan `{}` (default|o0|o1|o2)", clip(&request.plan));
            return Reply {
                code: codes::UNKNOWN_PLAN,
                line: protocol::error_response(&request.id, codes::UNKNOWN_PLAN, &message),
            };
        };
        let target = match resolve_target(&request.target) {
            Ok(t) => t,
            Err(message) => {
                return Reply {
                    code: codes::UNKNOWN_TARGET,
                    line: protocol::error_response(&request.id, codes::UNKNOWN_TARGET, &message),
                };
            }
        };
        match session.compile_source_deadline(&target, &request.program, deadline) {
            Ok((code, _timings)) => {
                let elapsed_us = started.elapsed().as_micros() as u64;
                let line = protocol::ok_response(
                    &request.id,
                    &request.target,
                    &code.name,
                    code.size_words(),
                    code.len(),
                    elapsed_us,
                    &code.render(),
                );
                Reply { code: "ok", line }
            }
            Err(e) => {
                let code = protocol::error_code(&e);
                Reply { code, line: protocol::error_response(&request.id, code, &e.to_string()) }
            }
        }
    }

    fn apply_fault(&self, injector: &FaultInjector, fault: Fault, deadline: Instant) {
        match fault {
            Fault::Panic => panic!("{FAULT_MARKER}: forced request panic"),
            Fault::Stall(extra_ms) => {
                // sleep just past the request deadline so the pipeline's
                // wall-clock budget machinery is what surfaces the fault
                let past_deadline = deadline.saturating_duration_since(Instant::now())
                    + Duration::from_millis(extra_ms);
                std::thread::sleep(past_deadline.min(Duration::from_millis(1_500)));
            }
            Fault::TornCache => {
                if let Some(dir) = &self.cache_dir {
                    faults::tear_cache_file(injector, dir);
                }
            }
        }
    }

    fn session_for(&self, plan: &str) -> Option<&Session> {
        let name = match plan.to_ascii_lowercase().as_str() {
            "default" | "o2" => "o2",
            "o0" => "o0",
            "o1" => "o1",
            _ => return None,
        };
        self.sessions.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// Renders the full Prometheus exposition: the daemon's own
    /// `recordd_*` series followed by the per-plan sessions merged into
    /// one `record_*`/`trace_*` view.
    pub fn render_metrics(&self) -> String {
        let merged = MetricsRegistry::new();
        for (_, session) in &self.sessions {
            merged.merge(session.metrics());
        }
        let mut out = self.metrics.render_prometheus();
        out.push_str(&merged.render_prometheus());
        out
    }

    /// Drain-time cache scrub: decode-checks every on-disk entry and
    /// deletes anything a torn write left unloadable. `None` when the
    /// daemon runs without a disk cache.
    pub fn scrub(&self) -> Option<ScrubStats> {
        self.cache_dir.as_deref().map(CompileCache::scrub_dir)
    }
}

fn clip(s: &str) -> &str {
    let mut end = s.len().min(64);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// What a completed serve lifecycle did, for the drain summary.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted (shed ones included).
    pub connections: u64,
    /// Requests answered, across every response code.
    pub requests: u64,
    /// Connections shed with `overloaded` at admission.
    pub shed: u64,
    /// Connection handlers that panicked outside request handling.
    pub connection_panics: u64,
    /// Drain-time cache scrub result (when a disk cache is configured).
    pub scrub: Option<ScrubStats>,
}

/// Bounded connection queue: accept pushes, workers pop, shutdown
/// closes. Closing wakes every worker; pops keep draining queued
/// connections after close so accepted clients are never dropped
/// unserved.
struct ConnQueue {
    state: Mutex<ConnQueueState>,
    ready: Condvar,
    depth: usize,
}

struct ConnQueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        ConnQueue {
            state: Mutex::new(ConnQueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Returns the stream back (for shedding) when the queue is full or
    /// closed; reports the new depth otherwise.
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed || state.items.len() >= self.depth {
            return Err(stream);
        }
        state.items.push_back(stream);
        let len = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(len)
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).items.len()
    }
}

/// The TCP front end around a [`Service`].
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listen socket and builds the service.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(Service::new(&config));
        Ok(Server { listener, service, config })
    }

    /// The bound address (useful after binding port `:0`).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The request engine, for embedders that want metrics access while
    /// the server runs on another thread.
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Runs until [`signals::request_shutdown`] (or SIGTERM/SIGINT once
    /// [`signals::install`] was called), then drains: stops accepting,
    /// serves every queued and in-flight connection to completion,
    /// scrubs the disk cache, and returns the lifecycle report.
    pub fn run(self) -> ServeReport {
        let queue = ConnQueue::new(self.config.queue_depth);
        let service = &self.service;
        let config = &self.config;
        std::thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                scope.spawn(|| worker_loop(&queue, service, config));
            }
            accept_loop(&self.listener, &queue, service, config);
            queue.close();
            // scoped threads join here: drain completes before we return
        });
        let scrub = self.service.scrub();
        let metrics = self.service.metrics();
        ServeReport {
            connections: metrics.counter("recordd_connections_total"),
            requests: metrics.counter_sum("recordd_requests_total"),
            shed: metrics.counter("recordd_shed_total"),
            connection_panics: metrics.counter("recordd_connection_panics_total"),
            scrub,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &ConnQueue,
    service: &Service,
    config: &ServerConfig,
) {
    while !signals::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                service.metrics().inc("recordd_connections_total");
                match queue.push(stream) {
                    Ok(depth) => {
                        service.metrics().set_gauge("recordd_queue_depth", depth as f64);
                    }
                    Err(stream) => shed(service, stream, config),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                service.metrics().inc("recordd_accept_errors_total");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Explicit-rejection load shedding: the client gets one `overloaded`
/// line and a clean close instead of a hung or reset connection.
fn shed(service: &Service, mut stream: TcpStream, config: &ServerConfig) {
    service.metrics().inc("recordd_shed_total");
    let _ = stream.set_write_timeout(Some(config.read_timeout.min(Duration::from_secs(1))));
    let line = protocol::error_response("", codes::OVERLOADED, "admission queue full, retry later");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

fn worker_loop(queue: &ConnQueue, service: &Service, config: &ServerConfig) {
    while let Some(stream) = queue.pop() {
        service.metrics().set_gauge("recordd_queue_depth", queue.len() as f64);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            serve_connection(service, config, stream);
        }));
        if outcome.is_err() {
            service.metrics().inc("recordd_connection_panics_total");
        }
    }
}

enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; the stream cannot be re-synchronized.
    TooLong,
    /// Clean end of stream.
    Eof,
    /// Read error — timeouts (slow loris) and resets land here.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max` bytes. The bound is
/// enforced *while reading*: a hostile peer can never make the server
/// buffer more than `max` bytes, no matter how much it sends.
fn read_line_bounded(reader: &mut impl BufRead, max: usize, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() { LineRead::Eof } else { LineRead::Line };
        }
        if let Some(ix) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + ix > max {
                return LineRead::TooLong;
            }
            buf.extend_from_slice(&chunk[..ix]);
            reader.consume(ix + 1);
            return LineRead::Line;
        }
        let n = chunk.len();
        if buf.len() + n > max {
            return LineRead::TooLong;
        }
        buf.extend_from_slice(chunk);
        reader.consume(n);
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn serve_connection(service: &Service, config: &ServerConfig, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        match read_line_bounded(&mut reader, protocol::MAX_REQUEST_BYTES, &mut buf) {
            LineRead::Eof | LineRead::Failed => break,
            LineRead::TooLong => {
                service.metrics().inc_with("recordd_requests_total", &[("code", codes::TOO_LARGE)]);
                let line = protocol::error_response(
                    "",
                    codes::TOO_LARGE,
                    &format!("request line exceeds {} bytes", protocol::MAX_REQUEST_BYTES),
                );
                let _ = write_line(&mut writer, &line);
                break; // cannot re-synchronize a half-read line
            }
            LineRead::Line => {
                if buf.starts_with(b"GET ") {
                    serve_http(service, &mut reader, &mut writer, &buf);
                    break;
                }
                let response = match std::str::from_utf8(&buf) {
                    Ok(line) => service.handle_line(line.trim_end()),
                    Err(_) => {
                        service
                            .metrics()
                            .inc_with("recordd_requests_total", &[("code", codes::BAD_REQUEST)]);
                        protocol::error_response("", codes::BAD_REQUEST, "request is not UTF-8")
                    }
                };
                if write_line(&mut writer, &response).is_err() {
                    break; // abrupt disconnect mid-response
                }
            }
        }
        if signals::shutdown_requested() {
            break; // finish the in-flight request, then drain
        }
    }
}

/// A minimal HTTP/1.0 responder so `curl http://…/metrics` works on
/// the same port. Only `GET /metrics` and `GET /healthz` exist; the
/// connection always closes after one response.
fn serve_http(
    service: &Service,
    reader: &mut impl BufRead,
    writer: &mut TcpStream,
    request_line: &[u8],
) {
    service.metrics().inc("recordd_http_requests_total");
    // drain the (bounded) header block so the peer sees a clean close
    let mut header = Vec::new();
    for _ in 0..100 {
        match read_line_bounded(reader, 8 * 1024, &mut header) {
            LineRead::Line if !header.is_empty() && header != b"\r" => {}
            _ => break,
        }
    }
    let path = request_line
        .split(|&b| b == b' ')
        .nth(1)
        .and_then(|p| std::str::from_utf8(p).ok())
        .unwrap_or("/");
    let (status, body) = match path {
        "/metrics" => ("200 OK", service.render_metrics()),
        "/healthz" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(head.as_bytes());
    let _ = writer.write_all(body.as_bytes());
    let _ = writer.flush();
}

//! Deterministic fault injection for soak testing.
//!
//! When armed, the injector fires one of three faults on a small,
//! seeded fraction of requests: a forced panic inside the request
//! handler (exercising panic isolation), a stall that blows the
//! request deadline (exercising the wall-clock budget machinery), or a
//! torn write in the on-disk compile cache (exercising the
//! corruption-as-miss discipline and the drain-time scrub). The stream
//! of faults is a pure function of the seed — splitmix64 via
//! [`record_prop::Rng`] — so a failing soak replays exactly.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use record_prop::Rng;

/// Substring planted in every injected panic payload. The protocol
/// layer maps panics carrying it to the `injected` error code instead
/// of `internal`, so CI can assert zero *real* internals while faults
/// are being forced.
pub const FAULT_MARKER: &str = "injected-fault";

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the request handler with a [`FAULT_MARKER`] payload.
    Panic,
    /// Sleep for the given milliseconds before compiling, so the request
    /// deadline expires mid-flight.
    Stall(u64),
    /// Corrupt one committed file in the on-disk compile cache.
    TornCache,
}

impl Fault {
    /// Stable label for the `recordd_faults_injected_total{kind=…}`
    /// counter.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Stall(_) => "stall",
            Fault::TornCache => "torn-cache",
        }
    }
}

/// Seeded fault source shared by the worker threads.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Mutex<Rng>,
    /// Fire one fault roughly every `period` draws (so the soak stays
    /// mostly healthy traffic with a steady trickle of chaos).
    period: usize,
}

impl FaultInjector {
    /// Creates an injector firing roughly one fault per `period`
    /// requests, deterministically from `seed`.
    pub fn new(seed: u64, period: usize) -> Self {
        FaultInjector { rng: Mutex::new(Rng::new(seed)), period: period.max(1) }
    }

    /// Draws the fault decision for one request. `None` means the
    /// request proceeds untouched.
    pub fn draw(&self) -> Option<Fault> {
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if rng.usize(self.period) != 0 {
            return None;
        }
        Some(match rng.usize(3) {
            0 => Fault::Panic,
            1 => Fault::Stall(50 + rng.usize(150) as u64),
            _ => Fault::TornCache,
        })
    }

    /// Picks a victim among `candidates` for a torn-cache fault.
    pub fn pick_victim(&self, candidates: &[PathBuf]) -> Option<PathBuf> {
        if candidates.is_empty() {
            return None;
        }
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(candidates[rng.usize(candidates.len())].clone())
    }
}

/// Applies a torn-cache fault: truncates one committed cache entry to
/// half its length, simulating a writer killed mid-write *without* the
/// atomic-rename discipline. The cache treats the remains as a miss;
/// the drain-time scrub deletes them. Returns `true` when a file was
/// actually torn.
pub fn tear_cache_file(injector: &FaultInjector, dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    let candidates: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".bin") && !n.contains(".tmp."))
        })
        .collect();
    let Some(victim) = injector.pick_victim(&candidates) else {
        return false;
    };
    let Ok(bytes) = std::fs::read(&victim) else {
        return false;
    };
    if bytes.len() < 2 {
        return false;
    }
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).is_ok()
}

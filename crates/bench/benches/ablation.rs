//! **Ablations** — one knob per Section 3.3 optimization, measured on the
//! kernels where it bites. Every axis is expressed as a [`PassPlan`]
//! edit: the default plan minus one named pass (or a plan rebuilt from
//! options for the knobs that live *inside* a pass, like the variant
//! limit or the schedule mode). Prints code size (and, where relevant,
//! cycles or pass-specific metrics) with the optimization on and off,
//! then times a default compile.
//!
//! `cargo bench --bench ablation -- smoke` runs the CI smoke subset:
//! one kernel compiled under the `O0` and default plans, validated and
//! timed, without the full table or the timing loop.

use std::collections::HashMap;

use record::{CompileOptions, Compiler, PassPlan};
use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_ir::transform::RuleSet;
use record_ir::Symbol;
use record_opt::modes::ModeStrategy;
use record_sim::run_program;

fn words(compiler: &Compiler, lir: &record_ir::lir::Lir, plan: &PassPlan) -> u32 {
    compiler.compile_plan(lir, plan).unwrap().size_words()
}

fn cycles(
    compiler: &Compiler,
    lir: &record_ir::lir::Lir,
    plan: &PassPlan,
    inputs: &HashMap<Symbol, Vec<i64>>,
) -> u64 {
    let code = compiler.compile_plan(lir, plan).unwrap();
    run_program(&code, compiler.target(), inputs).unwrap().1.cycles
}

fn lir_of(name: &str) -> record_ir::lir::Lir {
    let k = record_dspstone::kernel(name).unwrap();
    record_ir::lower::lower(&record_ir::dfl::parse(k.source).unwrap()).unwrap()
}

fn print_ablations() {
    let tic25 = Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    let d56k = Compiler::for_target(record_isa::targets::dsp56k::target()).unwrap();
    let full = PassPlan::default();

    println!("\nAblation: each optimization on/off (code words), plan-driven");
    println!("default plan: {}", full.names().join(" -> "));
    println!("{:-<72}", "");

    // 1. algebraic variants (Section 4.3.3): 2*x covers as a 1-word
    // load-with-shift only after the mul->shift rewrite. The rule set
    // lives inside the select pass, so this axis rebuilds the plan from
    // options rather than dropping a pass.
    let no_variants = PassPlan::from_options(&CompileOptions {
        rules: RuleSet::none(),
        variant_limit: 1,
        ..CompileOptions::default()
    });
    let shifty = record_ir::lower::lower(
        &record_ir::dfl::parse(
            "program s; const N = 8; in x: fix[N]; out y: fix[N];
             begin for i in 0..N-1 loop y[i] := 2 * x[i]; end loop; end",
        )
        .unwrap(),
    )
    .unwrap();
    println!(
        "{:<44} {:>5} -> {:>5}",
        "algebraic tree variants (2*x loop, off->on)",
        words(&tic25, &shifty, &no_variants),
        words(&tic25, &shifty, &full),
    );

    // 2. compaction / fusion on tic25 (LTA/LTP/LTS): drop the compact
    // (and its companion hoist) passes by name
    let cm = lir_of("complex_multiply");
    let no_compact = full.clone().without("compact").without("hoist");
    println!(
        "{:<44} {:>5} -> {:>5}",
        "instruction fusion (complex_multiply)",
        words(&tic25, &cm, &no_compact),
        words(&tic25, &cm, &full),
    );

    // 3. parallel-move packing on dsp56k
    println!(
        "{:<44} {:>5} -> {:>5}",
        "parallel-move packing (dsp56k, complex_mul)",
        words(&d56k, &cm, &no_compact),
        words(&d56k, &cm, &full),
    );

    // 4. bank assignment enables packing (dsp56k)
    println!(
        "{:<44} {:>5} -> {:>5}",
        "memory-bank assignment (dsp56k, complex_mul)",
        words(&d56k, &cm, &full.clone().without("banks")),
        words(&d56k, &cm, &full),
    );

    // 5. loop-invariant hoisting + hardware repeat: a constant fill loop
    // compacts to LACK; RPTK; SACL *+
    let fill = record_ir::lower::lower(
        &record_ir::dfl::parse(
            "program fill; const N = 32; out a: fix[N];
             begin for i in 0..N-1 loop a[i] := 7; end loop; end",
        )
        .unwrap(),
    )
    .unwrap();
    let no_rpt = full.clone().without("rpt").without("compact").without("hoist");
    println!(
        "{:<44} {:>5} -> {:>5}   (cycles)",
        "invariant hoist + hardware repeat (fill)",
        cycles(&tic25, &fill, &no_rpt, &HashMap::new()),
        cycles(&tic25, &fill, &full, &HashMap::new()),
    );
    println!(
        "{:<44} {:>5} -> {:>5}   (words)",
        "invariant hoist + hardware repeat (fill)",
        words(&tic25, &fill, &no_rpt),
        words(&tic25, &fill, &full),
    );

    // 6. offset assignment: AR traffic on a 56k-style machine
    let acc_seq: Vec<Symbol> = "a b a b c d c d a b".split_whitespace().map(Symbol::new).collect();
    let decl: Vec<Symbol> = "a c b d".split_whitespace().map(Symbol::new).collect();
    let soa = record_opt::soa_order(&acc_seq);
    println!(
        "{:<44} {:>5} -> {:>5}   (AR ops, 1 pointer)",
        "simple offset assignment (synthetic chain)",
        record_opt::soa_cost(&decl, &acc_seq, 1),
        record_opt::soa_cost(&soa, &acc_seq, 1),
    );

    // 6b. general offset assignment: more pointers, fewer AR operations
    let goa_seq: Vec<Symbol> =
        "a b c a b c a b c d e d e".split_whitespace().map(Symbol::new).collect();
    let (_, g1) = record_opt::goa(&goa_seq, 1, 1);
    let (_, g2) = record_opt::goa(&goa_seq, 2, 1);
    println!(
        "{:<44} {:>5} -> {:>5}   (AR ops, 1 vs 2 pointers)",
        "general offset assignment (synthetic)", g1, g2,
    );

    // 7. mode-change minimization: two saturating updates per iteration —
    // lazy switching hoists one SOVM before the loop; per-use pays twice
    // per statement per iteration. The strategy is a parameter of the
    // modes pass, so the axis swaps the pass configuration.
    let sat_src = "
        program sat_mix;
        const N = 8;
        in a: fix[N]; in b: fix[N];
        out y: fix; out z: fix;
        begin
          y := 0; z := 0;
          for i in 0..N-1 loop
            y := sadd(y, a[i]);
            z := sadd(z, b[i]);
          end loop;
        end";
    let sat_lir = record_ir::lower::lower(&record_ir::dfl::parse(sat_src).unwrap()).unwrap();
    let per_use = PassPlan::from_options(&CompileOptions {
        mode_strategy: ModeStrategy::PerUse,
        ..CompileOptions::default()
    });
    println!(
        "{:<44} {:>5} -> {:>5}",
        "mode minimization (mixed sat/wrap loop)",
        words(&tic25, &sat_lir, &per_use),
        words(&tic25, &sat_lir, &full),
    );

    // 8. CSE (tree sharing): a computed subexpression used by two
    // statements is computed once with sharing on
    let shared = record_ir::lower::lower(
        &record_ir::dfl::parse(
            "program sh; in a, b: fix; out u, v: fix;
             begin
               u := (a + b) * (a + b);
               v := (a + b) * 3;
             end",
        )
        .unwrap(),
    )
    .unwrap();
    println!(
        "{:<44} {:>5} -> {:>5}",
        "DFG sharing / treeify (shared (a+b))",
        words(&tic25, &shared, &full.clone().without("treeify")),
        words(&tic25, &shared, &full),
    );

    // 9. scheduling: list vs branch-and-bound bundles (dsp56k)
    let sched_list = PassPlan::from_options(&CompileOptions {
        schedule: Some(record_opt::ScheduleMode::List),
        ..CompileOptions::default()
    });
    let sched_bb = PassPlan::from_options(&CompileOptions {
        schedule: Some(record_opt::ScheduleMode::BranchAndBound { max_segment: 10 }),
        ..CompileOptions::default()
    });
    println!(
        "{:<44} {:>5} -> {:>5}",
        "list vs optimal B&B scheduling (dsp56k)",
        words(&d56k, &cm, &sched_list),
        words(&d56k, &cm, &sched_bb),
    );
}

/// CI smoke: one kernel under the `O0` and default plans, with strict
/// inter-pass verification forced on, validated against the reference.
/// Also drops a machine-readable summary at the repo root
/// (`BENCH_ablation.json`) so CI can archive the numbers.
fn smoke() {
    let compiler = Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    let lir = lir_of("fir");
    let kernel = record_dspstone::kernel("fir").unwrap();
    let inputs = kernel.inputs(42);
    let expected = kernel.reference(&inputs);
    let mut json =
        String::from("{\"bench\":\"ablation\",\"kernel\":\"fir\",\"target\":\"tic25\",\"plans\":[");
    for (i, (name, plan)) in
        [("O0", PassPlan::o0()), ("default", PassPlan::default())].into_iter().enumerate()
    {
        let plan = plan.strict(true);
        let (code, timings) = compiler.compile_plan_timed(&lir, &plan).unwrap();
        let (out, _) = run_program(&code, compiler.target(), &inputs).unwrap();
        for (out_name, _) in kernel.outputs() {
            let sym = Symbol::new(*out_name);
            assert_eq!(out.get(&sym), expected.get(&sym), "{name}: output {out_name} differs");
        }
        println!(
            "smoke {name:<8} [{}] {} words, {} passes, {:?}",
            plan.names().join(" "),
            code.size_words(),
            timings.passes.len(),
            timings.total
        );
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"plan\":\"{name}\",\"words\":{},\"insns\":{},\"passes\":{},\"time_us\":{}}}",
            code.size_words(),
            code.insns.len(),
            timings.passes.len(),
            timings.total.as_micros()
        ));
    }
    json.push_str("]}\n");
    record_trace::json::validate(&json).expect("ablation summary is well-formed JSON");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ablation.json");
    std::fs::write(path, &json).expect("write BENCH_ablation.json");
    println!("wrote {path}");
    println!("ablation smoke OK");
}

fn bench(c: &mut Criterion) {
    let compiler = Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    let lir = lir_of("fir");
    let o0 = PassPlan::o0();
    let mut group = c.benchmark_group("ablation_compile");
    group.bench_function("fir_all_optimizations", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&lir)).unwrap()))
    });
    group.bench_function("fir_no_optimizations", |b| {
        b.iter(|| black_box(compiler.compile_plan(black_box(&lir), &o0).unwrap()))
    });
    group.finish();
}

fn main() {
    if std::env::args().any(|a| a == "smoke") {
        smoke();
        return;
    }
    print_ablations();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

//! **Fig. 3** — instruction-set extraction: reproduces the figure's
//! extraction on its netlist, prints the extracted-instruction counts as
//! the netlist's ALU operation repertoire grows, and times extraction.

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_ir::{BinOp, Op};
use record_isa::netlist::{AluOp, Netlist};

/// An accumulator machine whose ALU supports `n_ops` operations — the
/// scaling axis for extraction (each op multiplies the justified paths).
fn scaled_netlist(n_ops: usize) -> Netlist {
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
    ];
    let mut n = Netlist::new();
    let acc = n.register("acc", 16);
    let mem = n.memory("mem", 256, 16);
    let addr = n.instr_field("addr", 8);
    let imm = n.instr_field("imm", 8);
    let f_op = n.instr_field("f_op", 3);
    let f_src = n.instr_field("f_src", 1);
    let f_wb = n.instr_field("f_wb", 1);
    let alu = n.alu(
        "alu",
        16,
        ops.iter()
            .take(n_ops)
            .enumerate()
            .map(|(i, op)| AluOp { op: Op::Bin(*op), sel: i as u64 })
            .collect(),
    );
    let src_mux = n.mux("src_mux", 16, 2);
    let wb_mux = n.mux("wb_mux", 16, 2);
    n.connect(addr, "y", mem, "ra");
    n.connect(addr, "y", mem, "wa");
    n.connect(mem, "q", src_mux, "i0");
    n.connect(imm, "y", src_mux, "i1");
    n.connect(f_src, "y", src_mux, "sel");
    n.connect(acc, "q", alu, "a");
    n.connect(src_mux, "y", alu, "b");
    n.connect(f_op, "y", alu, "op");
    n.connect(alu, "y", wb_mux, "i0");
    n.connect(src_mux, "y", wb_mux, "i1");
    n.connect(f_wb, "y", wb_mux, "sel");
    n.connect(wb_mux, "y", acc, "d");
    n.connect(acc, "q", mem, "d");
    n
}

fn print_series() {
    println!("\nFig. 3 reproduction:");
    for insn in record_ise::extract(&record_ise::demo::fig3_netlist()).unwrap() {
        println!("  {insn}");
    }
    println!("\nextracted instructions vs ALU repertoire (justification scaling):");
    println!("{:>8} {:>14}", "ALU ops", "instructions");
    for n_ops in [1, 2, 4, 8] {
        let netlist = scaled_netlist(n_ops);
        let insns = record_ise::extract(&netlist).unwrap();
        println!("{n_ops:>8} {:>14}", insns.len());
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ise_extract");
    for n_ops in [1usize, 4, 8] {
        let netlist = scaled_netlist(n_ops);
        group.bench_function(format!("alu_ops_{n_ops}"), |b| {
            b.iter(|| black_box(record_ise::extract(black_box(&netlist)).unwrap()))
        });
    }
    let fig3 = record_ise::demo::fig3_netlist();
    group.bench_function("fig3", |b| {
        b.iter(|| black_box(record_ise::extract(black_box(&fig3)).unwrap()))
    });
    group.finish();
}

fn main() {
    print_series();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

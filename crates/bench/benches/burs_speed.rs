//! **Section 4.3.3** — "this approach is feasible due to the high speed
//! of iburg-based matchers": measures matcher throughput (trees per
//! second) and the cost of enumerating and matching algebraic variants
//! per statement, which is RECORD's whole selection strategy.

//!
//! `cargo bench --bench burs_speed -- smoke` runs the CI smoke subset:
//! the streamed/interned hot path is checked against the boxed reference
//! (same variant counts, same best cover) and the deterministic work
//! counters — dedup hits, memoized labels, skipped enumeration — are
//! printed and asserted non-trivial.

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_burg::{LabelCache, Matcher};
use record_ir::transform::{variants, variants_interned, RuleSet, VariantStream};
use record_ir::{BinOp, Tree, TreePool};

fn statement_tree() -> Tree {
    // dr := cr + ar*br - ai*bi — a typical Table 1 statement
    Tree::bin(
        BinOp::Sub,
        Tree::bin(
            BinOp::Add,
            Tree::var("cr"),
            Tree::bin(BinOp::Mul, Tree::var("ar"), Tree::var("br")),
        ),
        Tree::bin(BinOp::Mul, Tree::var("ai"), Tree::var("bi")),
    )
}

fn print_stats() {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let tree = statement_tree();

    println!("\nvariant enumeration and matching for `cr + ar*br - ai*bi`:");
    for limit in [1usize, 8, 32, 128] {
        let vs = variants(&tree, &RuleSet::all(), limit);
        let best =
            vs.iter().filter_map(|v| matcher.cover(v, acc).map(|c| c.cost.words)).min().unwrap();
        println!("  limit {limit:>4}: {:>4} variants, best cover {best} words", vs.len());
    }

    // raw throughput estimate
    let n = 20_000u32;
    let start = std::time::Instant::now();
    for _ in 0..n {
        black_box(matcher.cover(black_box(&tree), acc));
    }
    let per = start.elapsed() / n;
    println!(
        "matcher throughput: {per:?} per tree (~{:.0}k trees/s) — \"the high speed of iburg-based matchers\"",
        1.0e6 / per.as_micros().max(1) as f64
    );
}

/// CI smoke: the interned hot path (hash-consed pool + streamed
/// enumeration + memoized labelling) must agree with the boxed reference
/// on every variant count and best-cover weight, and its deterministic
/// work counters must show it actually saved work.
fn smoke() {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let tree = statement_tree();

    let mut pool = TreePool::new();
    let mut cache = LabelCache::new();
    for limit in [1usize, 8, 32, 128] {
        let boxed = variants(&tree, &RuleSet::all(), limit);
        let ids = variants_interned(&mut pool, &tree, &RuleSet::all(), limit);
        assert_eq!(boxed.len(), ids.len(), "limit {limit}: streamed count diverges");
        for (v, &id) in boxed.iter().zip(&ids) {
            let reference = matcher.cover(v, acc).map(|c| c.cost.weight());
            let interned =
                matcher.cover_interned(&pool, id, &mut cache, acc).map(|c| c.cost.weight());
            assert_eq!(reference, interned, "limit {limit}: cover diverges on a variant");
        }
        println!(
            "smoke limit {limit:>4}: {:>4} variants, pool {:>4} nodes, {:>5} dedup hits, labels {:>4} computed / {:>5} memoized",
            ids.len(),
            pool.len(),
            pool.dedup_hits(),
            cache.misses(),
            cache.hits()
        );
    }
    assert!(pool.dedup_hits() > 0, "hash-consing never deduplicated a node");
    assert!(cache.hits() > 0, "label memoization never hit");

    // Budget-aware streaming: stop after two yielded variants (the
    // original plus one rewrite) and count the enumeration work the
    // eager path would have wasted.
    let mut stream = VariantStream::new(&mut pool, &tree, RuleSet::all(), 128);
    for _ in 0..2 {
        let id = stream.next(&mut pool).expect("variant streams on demand");
        let _ = matcher.cover_interned(&pool, id, &mut cache, acc);
    }
    assert!(stream.pending() > 0, "early stop skipped no buffered variants");
    println!(
        "smoke early-stop: 2 variants consumed, {} generated-but-unread skipped, {} rewrite steps charged",
        stream.pending(),
        stream.steps()
    );
    println!("burs_speed smoke OK");
}

fn bench(c: &mut Criterion) {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let tree = statement_tree();

    let mut group = c.benchmark_group("burs_speed");
    group.bench_function("label_and_reduce", |b| {
        b.iter(|| black_box(matcher.cover(black_box(&tree), acc).unwrap()))
    });
    let mut pool = TreePool::new();
    let root = pool.intern(&tree);
    group.bench_function("label_and_reduce_interned", |b| {
        b.iter(|| {
            let mut cache = LabelCache::new();
            black_box(matcher.cover_interned(&pool, root, &mut cache, acc).unwrap())
        })
    });
    let mut warm = LabelCache::new();
    matcher.cover_interned(&pool, root, &mut warm, acc);
    group.bench_function("label_and_reduce_memoized", |b| {
        b.iter(|| black_box(matcher.cover_interned(&pool, root, &mut warm, acc).unwrap()))
    });
    group.bench_function("enumerate_32_variants", |b| {
        b.iter(|| black_box(variants(black_box(&tree), &RuleSet::all(), 32)))
    });
    group.bench_function("enumerate_32_variants_streamed", |b| {
        b.iter(|| black_box(variants_interned(&mut pool, black_box(&tree), &RuleSet::all(), 32)))
    });
    group.bench_function("select_over_32_variants", |b| {
        b.iter(|| {
            let vs = variants(black_box(&tree), &RuleSet::all(), 32);
            vs.iter().filter_map(|v| matcher.cover(v, acc).map(|c| c.cost.weight())).min()
        })
    });
    group.bench_function("select_over_32_variants_interned", |b| {
        b.iter(|| {
            let mut stream = VariantStream::new(&mut pool, black_box(&tree), RuleSet::all(), 32);
            let mut best = None;
            while let Some(id) = stream.next(&mut pool) {
                let w = matcher.cover_interned(&pool, id, &mut warm, acc).map(|c| c.cost.weight());
                best = match (best, w) {
                    (None, w) => w,
                    (Some(b), Some(w)) => Some(if w < b { w } else { b }),
                    (b, None) => b,
                };
            }
            black_box(best)
        })
    });
    group.finish();
}

fn main() {
    if std::env::args().any(|a| a == "smoke") {
        smoke();
        return;
    }
    print_stats();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

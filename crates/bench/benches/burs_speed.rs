//! **Section 4.3.3** — "this approach is feasible due to the high speed
//! of iburg-based matchers": measures matcher throughput (trees per
//! second) and the cost of enumerating and matching algebraic variants
//! per statement, which is RECORD's whole selection strategy.

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_burg::Matcher;
use record_ir::transform::{variants, RuleSet};
use record_ir::{BinOp, Tree};

fn statement_tree() -> Tree {
    // dr := cr + ar*br - ai*bi — a typical Table 1 statement
    Tree::bin(
        BinOp::Sub,
        Tree::bin(
            BinOp::Add,
            Tree::var("cr"),
            Tree::bin(BinOp::Mul, Tree::var("ar"), Tree::var("br")),
        ),
        Tree::bin(BinOp::Mul, Tree::var("ai"), Tree::var("bi")),
    )
}

fn print_stats() {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let tree = statement_tree();

    println!("\nvariant enumeration and matching for `cr + ar*br - ai*bi`:");
    for limit in [1usize, 8, 32, 128] {
        let vs = variants(&tree, &RuleSet::all(), limit);
        let best =
            vs.iter().filter_map(|v| matcher.cover(v, acc).map(|c| c.cost.words)).min().unwrap();
        println!("  limit {limit:>4}: {:>4} variants, best cover {best} words", vs.len());
    }

    // raw throughput estimate
    let n = 20_000u32;
    let start = std::time::Instant::now();
    for _ in 0..n {
        black_box(matcher.cover(black_box(&tree), acc));
    }
    let per = start.elapsed() / n;
    println!(
        "matcher throughput: {per:?} per tree (~{:.0}k trees/s) — \"the high speed of iburg-based matchers\"",
        1.0e6 / per.as_micros().max(1) as f64
    );
}

fn bench(c: &mut Criterion) {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let tree = statement_tree();

    let mut group = c.benchmark_group("burs_speed");
    group.bench_function("label_and_reduce", |b| {
        b.iter(|| black_box(matcher.cover(black_box(&tree), acc).unwrap()))
    });
    group.bench_function("enumerate_32_variants", |b| {
        b.iter(|| black_box(variants(black_box(&tree), &RuleSet::all(), 32)))
    });
    group.bench_function("select_over_32_variants", |b| {
        b.iter(|| {
            let vs = variants(black_box(&tree), &RuleSet::all(), 32);
            vs.iter().filter_map(|v| matcher.cover(v, acc).map(|c| c.cost.weight())).min()
        })
    });
    group.finish();
}

fn main() {
    print_stats();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

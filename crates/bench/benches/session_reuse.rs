//! Session-cache payoff — quantifies what the [`record::Session`] layer
//! buys: a fresh `Compiler::for_target` regenerates the BURS tables
//! (rule indexing, chain-rule closure) on every construction, while a
//! `Session` builds them once per target fingerprint and shares them via
//! `Arc` across all subsequent compiles, including the parallel batch
//! driver. The headline number is the per-kernel cost of
//! fresh-construct-and-compile vs. cached compile; the acceptance bar
//! is a ≥2× speedup for second-and-later compiles.

use record::{Compiler, Session};
use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_ir::lir::Lir;
use record_ir::{dfl, lower};

fn kernel_lirs() -> Vec<Lir> {
    record_dspstone::kernels()
        .into_iter()
        .map(|k| lower::lower(&dfl::parse(k.source).unwrap()).unwrap())
        .collect()
}

fn print_stats() {
    let target = record_isa::targets::tic25::target();
    let lirs = kernel_lirs();
    let n = 50u32;

    // what the cache amortizes: obtaining a ready compiler. The fresh
    // path clones the description, validates it and regenerates the BURS
    // tables; the session path is a fingerprint + map lookup.
    let m = 5_000u32;
    let start = std::time::Instant::now();
    for _ in 0..m {
        black_box(Compiler::for_target(black_box(target.clone())).unwrap());
    }
    let construct = start.elapsed() / m;
    let session = Session::new();
    session.compiler_for(&target).unwrap(); // warm the cache
    let start = std::time::Instant::now();
    for _ in 0..m {
        black_box(session.compiler_for(black_box(&target)).unwrap());
    }
    let lookup = start.elapsed() / m;
    let speedup = construct.as_nanos() as f64 / lookup.as_nanos().max(1) as f64;
    println!("\nready-compiler acquisition on tic25 (second-and-later compiles):");
    println!("  fresh  (Compiler::for_target, tables rebuilt): {construct:?}");
    println!("  cached (Session::compiler_for, tables shared): {lookup:?}");
    println!("  speedup: {speedup:.2}x (acceptance bar: >= 2x)");

    // end-to-end per-kernel compile, fresh vs. cached
    let start = std::time::Instant::now();
    for _ in 0..n {
        for lir in &lirs {
            let compiler = Compiler::for_target(target.clone()).unwrap();
            black_box(compiler.compile(black_box(lir)).ok());
        }
    }
    let fresh = start.elapsed() / (n * lirs.len() as u32);
    let start = std::time::Instant::now();
    for _ in 0..n {
        for lir in &lirs {
            black_box(session.compile(&target, black_box(lir)).ok());
        }
    }
    let cached = start.elapsed() / (n * lirs.len() as u32);
    println!("\nper-kernel compile, {} DSPStone kernels on tic25:", lirs.len());
    println!("  fresh  (Compiler::for_target each time): {fresh:?}");
    println!("  cached (Session, shared BURS tables):    {cached:?}");

    // batch driver vs. a sequential loop over the same session
    let start = std::time::Instant::now();
    for _ in 0..n {
        black_box(session.compile_batch(&target, &lirs).unwrap());
    }
    let batch = start.elapsed() / n;
    let start = std::time::Instant::now();
    for _ in 0..n {
        let v: Vec<_> = lirs.iter().map(|l| session.compile(&target, l)).collect();
        black_box(v);
    }
    let seq = start.elapsed() / n;
    println!("full suite: sequential {seq:?}, compile_batch {batch:?}");
}

fn bench(c: &mut Criterion) {
    let target = record_isa::targets::tic25::target();
    let lirs = kernel_lirs();
    let session = Session::new();
    session.compiler_for(&target).unwrap();

    let mut group = c.benchmark_group("session_reuse");
    group.bench_function("fresh_compiler_construction", |b| {
        b.iter(|| black_box(Compiler::for_target(black_box(target.clone())).unwrap()))
    });
    group.bench_function("session_cached_lookup", |b| {
        b.iter(|| black_box(session.compiler_for(black_box(&target)).unwrap()))
    });
    group.bench_function("fresh_compiler_per_compile", |b| {
        b.iter(|| {
            let compiler = Compiler::for_target(target.clone()).unwrap();
            black_box(compiler.compile(black_box(&lirs[0])).ok())
        })
    });
    group.bench_function("session_cached_compile", |b| {
        b.iter(|| black_box(session.compile(&target, black_box(&lirs[0])).ok()))
    });
    group.bench_function("compile_batch_all_kernels", |b| {
        b.iter(|| black_box(session.compile_batch(&target, black_box(&lirs)).unwrap()))
    });
    group.finish();
}

fn main() {
    print_stats();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

//! **Section 4.5** — self-test program generation with a retargetable
//! compiler: prints coverage and fault-detection rates for three targets
//! (including one generated from a netlist), then times generation.

use record::selftest::{detects_fault, generate};
use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_isa::TargetDesc;

fn report(target: &TargetDesc) {
    let st = generate(target, 0xD5E).expect("generable");
    let mut tested = 0u32;
    let mut detected = 0u32;
    for victim in 0..st.code.insns.len() {
        if let Some(hit) = detects_fault(&st, target, victim) {
            tested += 1;
            detected += u32::from(hit);
        }
    }
    println!(
        "  {:<18} coverage {:>5.1}%  size {:>4} words  fault detection {detected}/{tested}",
        target.name,
        st.coverage() * 100.0,
        st.code.size_words()
    );
}

fn print_table() {
    println!("\nSection 4.5: generated self-test programs:");
    report(&record_isa::targets::tic25::target());
    report(&record_isa::targets::asip::build(&record_isa::targets::asip::AsipParams::dsp()));
    let netlist = record_ise::demo::acc_machine_netlist();
    let (compiler, _) =
        record::Compiler::from_netlist("accgen", &netlist, &Default::default()).unwrap();
    report(compiler.target());
}

fn bench(c: &mut Criterion) {
    let tic25 = record_isa::targets::tic25::target();
    let asip = record_isa::targets::asip::build(&record_isa::targets::asip::AsipParams::dsp());
    let mut group = c.benchmark_group("selftest_generate");
    group
        .bench_function("tic25", |b| b.iter(|| black_box(generate(black_box(&tic25), 1).unwrap())));
    group.bench_function("asip_dsp", |b| {
        b.iter(|| black_box(generate(black_box(&asip), 1).unwrap()))
    });
    group.finish();
}

fn main() {
    print_table();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

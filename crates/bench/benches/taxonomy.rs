//! **Fig. 1** — the processor cube: prints the eight corners with the
//! paper's example processors, then times target construction for one
//! model per corner family (constructing an explicit target description
//! is the entry fee of retargetability, so it should be cheap).

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_isa::taxonomy::{paper_examples, CubePoint};

fn print_cube() {
    println!("\nFig. 1 — the processor cube:");
    for corner in CubePoint::corners() {
        println!(
            "  {:<9} | {:<5} | {:<12} => {}",
            format!("{:?}", corner.availability),
            format!("{:?}", corner.domain),
            format!("{:?}", corner.app),
            corner.label()
        );
    }
    println!("\nexamples from the paper:");
    for ex in paper_examples() {
        println!("  {:<28} -> {}", ex.name, ex.point.label());
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("target_construction");
    group.bench_function("tic25", |b| b.iter(|| black_box(record_isa::targets::tic25::target())));
    group.bench_function("dsp56k", |b| b.iter(|| black_box(record_isa::targets::dsp56k::target())));
    group.bench_function("risc8", |b| {
        b.iter(|| black_box(record_isa::targets::simple_risc::target(8)))
    });
    group.bench_function("asip_dsp", |b| {
        b.iter(|| {
            black_box(record_isa::targets::asip::build(
                &record_isa::targets::asip::AsipParams::dsp(),
            ))
        })
    });
    group.finish();
}

fn main() {
    print_cube();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

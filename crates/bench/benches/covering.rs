//! **Figs. 4–5** — covering data-flow trees with instruction patterns:
//! prints the figures' cover and a cover-cost series over growing
//! multiply-accumulate chains, then times labelling + reduction.

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_burg::{LabelCache, Matcher};
use record_ir::{BinOp, Tree, TreePool};

/// `y + c1*x1 + c2*x2 + …` — the canonical DSP chain, `k` products long.
fn mac_chain(k: usize) -> Tree {
    let mut tree = Tree::var("y");
    for i in 0..k {
        tree = Tree::bin(
            BinOp::Add,
            tree,
            Tree::bin(BinOp::Mul, Tree::var(format!("c{i}")), Tree::var(format!("x{i}"))),
        );
    }
    tree
}

fn print_series() {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();

    println!("\nFig. 5 cover of the Fig. 4 tree ((x*y)+9):");
    let fig_tree = Tree::bin(
        BinOp::Add,
        Tree::bin(BinOp::Mul, Tree::var("x"), Tree::var("y")),
        Tree::constant(9),
    );
    let cover = matcher.cover(&fig_tree, acc).unwrap();
    println!("  {}", cover.root.dump(&target));
    println!(
        "  cost: {} words, {} covering patterns",
        cover.cost.words,
        cover.pattern_count(&target)
    );

    println!("\ncover cost vs MAC-chain length (tic25):");
    println!("{:>8} {:>8} {:>10}", "products", "nodes", "words");
    for k in [1usize, 2, 4, 8, 16] {
        let tree = mac_chain(k);
        let cover = matcher.cover(&tree, acc).unwrap();
        println!("{k:>8} {:>8} {:>10}", tree.node_count(), cover.cost.words);
    }
}

fn bench(c: &mut Criterion) {
    let target = record_isa::targets::tic25::target();
    let matcher = Matcher::new(&target);
    let acc = target.nt("acc").unwrap();
    let mut group = c.benchmark_group("covering");
    for k in [1usize, 4, 16] {
        let tree = mac_chain(k);
        group.bench_function(format!("label_reduce_mac{k}"), |b| {
            b.iter(|| black_box(matcher.cover(black_box(&tree), acc).unwrap()))
        });
    }
    // Memoized counterpart: the MAC chain's shared sub-chains label once
    // and replay from the cache — the Fig. 4–5 hot path as selection
    // actually runs it (hash-consed pool + warm label cache).
    let mut pool = TreePool::new();
    let mut cache = LabelCache::new();
    for k in [1usize, 4, 16] {
        let root = pool.intern(&mac_chain(k));
        matcher.cover_interned(&pool, root, &mut cache, acc);
        group.bench_function(format!("label_reduce_mac{k}_memoized"), |b| {
            b.iter(|| black_box(matcher.cover_interned(&pool, root, &mut cache, acc).unwrap()))
        });
    }
    group.finish();
}

fn main() {
    print_series();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

//! **Table 1** — size of compiled programs in relation to assembly code
//! (%): the paper's headline evaluation, regenerated and printed, plus a
//! timing of the full RECORD compilation per kernel (the paper's remark
//! that longer-than-standard compile times are acceptable is only
//! meaningful if we can show what they are).

use record_bench::criterion;
use record_bench::{black_box, Criterion};

fn print_table() {
    let table = record::report::table1().expect("all kernels compile and validate");
    println!("\n{table}");
}

fn bench(c: &mut Criterion) {
    let compiler = record::Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    let mut group = c.benchmark_group("table1_compile");
    for kernel in record_dspstone::kernels() {
        let lir = record_ir::lower::lower(&record_ir::dfl::parse(kernel.source).unwrap()).unwrap();
        group.bench_function(kernel.name, |b| {
            b.iter(|| black_box(compiler.compile(black_box(&lir)).unwrap().size_words()))
        });
    }
    group.finish();
}

fn main() {
    print_table();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

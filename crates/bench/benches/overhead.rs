//! **Section 3.1** — the DSPStone claim that compiled code carries a
//! 2×–8× cycle overhead over hand assembly: prints the per-kernel
//! overhead factors of the target-specific baseline compiler, then times
//! the simulator (the measuring instrument itself).

use std::collections::HashMap;

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_ir::Symbol;
use record_sim::run_program;

fn print_table() {
    let target = record_isa::targets::tic25::target();
    println!("\nSection 3.1: cycle overhead of compiled code (baseline vs hand asm):");
    println!("{:<26} {:>10} {:>10} {:>9}", "kernel", "hand", "baseline", "factor");
    let mut in_band = 0;
    let mut rows = 0;
    for kernel in record_dspstone::kernels() {
        let lir = record_ir::lower::lower(&record_ir::dfl::parse(kernel.source).unwrap()).unwrap();
        let base = record::baseline::compile(&lir).unwrap();
        let hand = record::handasm::hand_code(kernel.name).unwrap();
        let inputs = kernel.inputs(1);
        let (_, hand_run) = run_program(&hand, &target, &inputs).unwrap();
        let (_, base_run) = run_program(&base, &target, &inputs).unwrap();
        let factor = base_run.cycles as f64 / hand_run.cycles.max(1) as f64;
        rows += 1;
        if (2.0..=8.0).contains(&factor) {
            in_band += 1;
        }
        println!(
            "{:<26} {:>10} {:>10} {:>8.1}x",
            kernel.name, hand_run.cycles, base_run.cycles, factor
        );
    }
    println!("{in_band}/{rows} kernels inside the paper's 2-8x band");
    println!("(straight-line kernels sit below the band: direct addressing is");
    println!(" equally available to both compilers, so only loop kernels expose");
    println!(" the addressing/loop-overhead deficiencies the paper describes)");
}

fn bench(c: &mut Criterion) {
    let target = record_isa::targets::tic25::target();
    let kernel = record_dspstone::kernel("fir").unwrap();
    let lir = record_ir::lower::lower(&record_ir::dfl::parse(kernel.source).unwrap()).unwrap();
    let base = record::baseline::compile(&lir).unwrap();
    let hand = record::handasm::hand_code("fir").unwrap();
    let inputs: HashMap<Symbol, Vec<i64>> = kernel.inputs(1);

    let mut group = c.benchmark_group("overhead_simulation");
    group.bench_function("simulate_hand_fir", |b| {
        b.iter(|| black_box(run_program(black_box(&hand), &target, &inputs).unwrap()))
    });
    group.bench_function("simulate_baseline_fir", |b| {
        b.iter(|| black_box(run_program(black_box(&base), &target, &inputs).unwrap()))
    });
    group.finish();
}

fn main() {
    print_table();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

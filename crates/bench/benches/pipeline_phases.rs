//! **Fig. 2** — the global view of RECORD: per-phase latency of the
//! pipeline (parse → lower → treeify → matcher generation → cover →
//! full compile) on the FIR kernel, printed as a phase table and timed.

use record_bench::criterion;
use record_bench::{black_box, Criterion};
use record_burg::Matcher;

fn phase_table() {
    use std::time::Instant;
    let kernel = record_dspstone::kernel("fir").unwrap();
    let target = record_isa::targets::tic25::target();

    let t0 = Instant::now();
    let ast = record_ir::dfl::parse(kernel.source).unwrap();
    let t_parse = t0.elapsed();

    let t0 = Instant::now();
    let lir = record_ir::lower::lower(&ast).unwrap();
    let t_lower = t0.elapsed();

    let t0 = Instant::now();
    let matcher = Matcher::new(&target);
    let t_gen = t0.elapsed();

    // one representative tree: the MAC statement
    let tree = record_ir::Tree::bin(
        record_ir::BinOp::Add,
        record_ir::Tree::var("y"),
        record_ir::Tree::bin(
            record_ir::BinOp::Mul,
            record_ir::Tree::var("c"),
            record_ir::Tree::var("x"),
        ),
    );
    let t0 = Instant::now();
    let cover = matcher.cover(&tree, target.nt("acc").unwrap()).unwrap();
    let t_cover = t0.elapsed();

    let compiler = record::Compiler::for_target(target.clone()).unwrap();
    let t0 = Instant::now();
    let (code, timings) = compiler.compile_timed(&lir).unwrap();
    let t_compile = t0.elapsed();

    println!("\nFig. 2 pipeline phases on `fir` ({} words out):", code.size_words());
    println!("  parse                {t_parse:>12?}");
    println!("  lower                {t_lower:>12?}");
    println!("  matcher generation   {t_gen:>12?}");
    println!("  label+reduce (1 tree){t_cover:>12?}   ({} words cover)", cover.cost.words);
    println!("  full compile         {t_compile:>12?}");
    println!("  pass trace:");
    for p in &timings.passes {
        println!(
            "    {:<8} {:>10.1}µs   {:>3} -> {:>3} insns",
            p.name,
            p.time.as_secs_f64() * 1e6,
            p.before.insns,
            p.after.insns
        );
    }
}

fn bench(c: &mut Criterion) {
    let kernel = record_dspstone::kernel("fir").unwrap();
    let target = record_isa::targets::tic25::target();
    let ast = record_ir::dfl::parse(kernel.source).unwrap();
    let lir = record_ir::lower::lower(&ast).unwrap();
    let compiler = record::Compiler::for_target(target.clone()).unwrap();

    let mut group = c.benchmark_group("pipeline_phases");
    group.bench_function("parse", |b| {
        b.iter(|| black_box(record_ir::dfl::parse(black_box(kernel.source)).unwrap()))
    });
    group.bench_function("lower", |b| {
        b.iter(|| black_box(record_ir::lower::lower(black_box(&ast)).unwrap()))
    });
    group.bench_function("matcher_generation", |b| {
        b.iter(|| black_box(Matcher::new(black_box(&target))))
    });
    group.bench_function("full_compile", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&lir)).unwrap()))
    });
    group.finish();
}

fn main() {
    phase_table();
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}

//! A minimal wall-clock benchmark harness with a Criterion-shaped API.
//!
//! Implements exactly the subset the benches in this crate use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and [`black_box`]. Each benchmark warms up for the
//! configured window, then runs sampling rounds for the measurement
//! window and reports the best (minimum) and median per-iteration time —
//! the minimum is the usual low-noise estimator for micro-benchmarks.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration plus the collected results.
///
/// API-compatible (for this crate's usage) with `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<Sample>,
}

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// `group/name` identifier.
    pub id: String,
    /// Best observed per-iteration time.
    pub best: Duration,
    /// Median per-iteration time across sampling rounds.
    pub median: Duration,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(900),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of sampling rounds per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up window before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window, split across the sampling rounds.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for Criterion compatibility; command-line filtering is
    /// not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample = self.run(id, f);
        self.results.push(sample);
        self
    }

    /// Prints a one-line summary per finished benchmark.
    pub fn final_summary(&self) {
        println!("\nbenchmark summary ({} entries):", self.results.len());
        for s in &self.results {
            println!(
                "  {:<44} best {:>12}   median {:>12}   ({} iters)",
                s.id,
                fmt_duration(s.best),
                fmt_duration(s.median),
                s.iterations
            );
        }
    }

    /// All collected samples, in execution order.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    fn run<F>(&self, id: String, mut f: F) -> Sample
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { spent: Duration::ZERO, iters: 0, budget: self.warm_up };
        f(&mut b); // warm-up round (timings discarded)

        let per_round = self.measurement / self.sample_size as u32;
        let mut rounds: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher { spent: Duration::ZERO, iters: 0, budget: per_round };
            f(&mut b);
            if b.iters > 0 {
                rounds.push(b.spent / b.iters as u32);
                total_iters += b.iters;
            }
        }
        rounds.sort();
        let best = rounds.first().copied().unwrap_or_default();
        let median = rounds.get(rounds.len() / 2).copied().unwrap_or_default();
        let sample = Sample { id, best, median, iterations: total_iters };
        println!(
            "{:<48} time: {:>12} (median {:>12})",
            sample.id,
            fmt_duration(sample.best),
            fmt_duration(sample.median)
        );
        sample
    }
}

/// A named set of benchmarks whose ids are prefixed `group/…`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample = self.criterion.run(full, f);
        self.criterion.results.push(sample);
        self
    }

    /// Ends the group (results were recorded as they ran).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`iter`](Self::iter)
/// with the code under test.
pub struct Bencher {
    spent: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Repeatedly executes `f`, timing each call, until the round's time
    /// budget is exhausted (at least once).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.spent += start.elapsed();
            self.iters += 1;
            if self.spent >= self.budget {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_sample() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(6));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iterations > 0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |b| b.iter(|| black_box(42)));
        g.finish();
        assert_eq!(c.results()[0].id, "g/x");
    }
}

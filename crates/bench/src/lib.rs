//! Shared helpers for the benchmark harness.
//!
//! Every bench binary in `benches/` regenerates one table or figure of
//! the paper: it first *prints* the reproduced rows/series (so `cargo
//! bench` output doubles as the experiment log recorded in
//! EXPERIMENTS.md), then times the underlying machinery with Criterion.

use std::time::Duration;

use criterion::Criterion;

/// A Criterion instance tuned for this suite: small samples and short
/// measurement windows, because the interesting output is the reproduced
/// table, not picosecond precision.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}

/// Compiles a DSPStone kernel with the RECORD pipeline for `tic25`.
pub fn compile_kernel(name: &str) -> record_isa::Code {
    let kernel = record_dspstone::kernel(name).expect("known kernel");
    let lir = record_ir::lower::lower(&record_ir::dfl::parse(kernel.source).unwrap()).unwrap();
    let compiler = record::Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    compiler.compile(&lir).unwrap()
}

//! Shared helpers for the benchmark harness.
//!
//! Every bench binary in `benches/` regenerates one table or figure of
//! the paper: it first *prints* the reproduced rows/series (so `cargo
//! bench` output doubles as the experiment log recorded in
//! EXPERIMENTS.md), then times the underlying machinery.
//!
//! The timing loop lives in [`harness`]: a dependency-free, wall-clock
//! mini-benchmark with the subset of the Criterion API these benches use
//! (`benchmark_group` / `bench_function` / `iter` / `black_box`). The
//! container this repo builds in has no network access to crates.io, so
//! the harness is vendored rather than pulled in as a dependency.

pub mod harness;

pub use harness::{black_box, Criterion};

use std::time::Duration;

/// A harness instance tuned for this suite: small samples and short
/// measurement windows, because the interesting output is the reproduced
/// table, not picosecond precision.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}

/// Compiles a DSPStone kernel with the RECORD pipeline for `tic25`.
pub fn compile_kernel(name: &str) -> record_isa::Code {
    let kernel = record_dspstone::kernel(name).expect("known kernel");
    let lir = record_ir::lower::lower(&record_ir::dfl::parse(kernel.source).unwrap()).unwrap();
    let compiler = record::Compiler::for_target(record_isa::targets::tic25::target()).unwrap();
    compiler.compile(&lir).unwrap()
}

//! A register-transfer-level simulator for RECORD target models.
//!
//! The paper's evaluation measures code size and cycle counts on real
//! silicon; this reproduction replaces the silicon with a deterministic
//! simulator. Because every instruction carries its own semantics (a
//! [`record_isa::SemExpr`] over concrete locations), the simulator is
//! target-independent: it executes whatever the selector bound, including
//! address-register post-modification, hardware repeat, structured loops,
//! saturation modes and parallel (simultaneous-read) operation bundles.
//!
//! Its two jobs:
//!
//! * **validation** — every compiled kernel is checked bit-exactly against
//!   its reference Rust implementation,
//! * **measurement** — cycle counts feed the Section 3.1 overhead bench;
//!   code size comes from [`record_isa::Code::size_words`].

use std::collections::HashMap;
use std::fmt;

use record_ir::{Bank, Symbol};
use record_isa::{AddrMode, Code, Insn, InsnKind, Loc, MemLoc, RegId, StructureError, TargetDesc};

/// An error raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory operand referenced a symbol missing from the layout.
    UnplacedSymbol(String),
    /// A resolved address fell outside the bank.
    AddressOutOfRange {
        /// The bank accessed.
        bank: Bank,
        /// The offending address.
        addr: i64,
    },
    /// A loop-variant operand's counter is not active.
    UnknownCounter(String),
    /// The step budget was exhausted (runaway loop guard).
    StepLimit,
    /// Structural problem (unbalanced loops, repeat without target).
    Structure(StructureError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnplacedSymbol(s) => write!(f, "symbol `{s}` not placed in data layout"),
            SimError::AddressOutOfRange { bank, addr } => {
                write!(f, "address {addr} outside bank {bank}")
            }
            SimError::UnknownCounter(s) => write!(f, "loop counter `{s}` not active"),
            SimError::StepLimit => f.write_str("step limit exceeded"),
            SimError::Structure(s) => write!(f, "bad code structure: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Dynamic execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Machine cycles consumed.
    pub cycles: u64,
    /// Instructions executed (bundles count once; repeats count each
    /// execution).
    pub insns: u64,
}

/// A simulated processor instance.
///
/// # Example
///
/// ```
/// use record_isa::{Code, Insn, Loc, MemLoc};
/// use record_sim::Machine;
///
/// let target = record_isa::targets::tic25::target();
/// let mut code = Code::default();
/// code.layout.place(record_ir::Symbol::new("x"), 0, 1, record_ir::Bank::X);
/// code.layout.place(record_ir::Symbol::new("y"), 1, 1, record_ir::Bank::X);
/// code.insns.push(Insn::mov(
///     Loc::Mem(MemLoc::scalar("y")),
///     Loc::Mem(MemLoc::scalar("x")),
///     "MOV y,x", 1, 1,
/// ));
/// let mut m = Machine::new(&target);
/// m.poke(&record_ir::Symbol::new("x"), 0, 42, &code)?;
/// m.run(&code)?;
/// assert_eq!(m.peek(&record_ir::Symbol::new("y"), 0, &code), Some(42));
/// # Ok::<(), record_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Machine<'t> {
    target: &'t TargetDesc,
    regs: HashMap<RegId, i64>,
    ars: Vec<i64>,
    mem: [Vec<i64>; 2],
    modes: Vec<bool>,
    max_steps: u64,
    trace: Option<Vec<String>>,
}

/// The default runaway-loop guard of [`Machine::new`] (in executed
/// steps); override it per machine with [`Machine::with_max_steps`] or
/// per run with [`run_program_with_steps`].
pub const DEFAULT_MAX_STEPS: u64 = 10_000_000;

impl<'t> Machine<'t> {
    /// Creates a machine with zeroed storage and default mode states.
    pub fn new(target: &'t TargetDesc) -> Self {
        let n_ars = target.agu.as_ref().map(|a| a.n_ars as usize).unwrap_or(0);
        let words = target.memory.words_per_bank as usize;
        Machine {
            target,
            regs: HashMap::new(),
            ars: vec![0; n_ars],
            mem: [vec![0; words], vec![0; words]],
            modes: target.modes.iter().map(|m| m.default_on).collect(),
            max_steps: DEFAULT_MAX_STEPS,
            trace: None,
        }
    }

    /// Overrides the runaway-loop step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Enables instruction tracing: every executed instruction is logged
    /// with its text; retrieve the log with [`Machine::take_trace`].
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Takes the accumulated trace (empty if tracing is off).
    pub fn take_trace(&mut self) -> Vec<String> {
        self.trace.take().unwrap_or_default()
    }

    /// Writes a value into a variable's element through the code's layout.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnplacedSymbol`] for unknown symbols.
    pub fn poke(
        &mut self,
        sym: &Symbol,
        index: u32,
        value: i64,
        code: &Code,
    ) -> Result<(), SimError> {
        let (bank, addr) = code
            .layout
            .addr_of(sym, index as i64)
            .ok_or_else(|| SimError::UnplacedSymbol(sym.to_string()))?;
        self.write_mem(bank, addr as i64, value)
    }

    /// Reads a variable's element through the code's layout.
    pub fn peek(&self, sym: &Symbol, index: u32, code: &Code) -> Option<i64> {
        let (bank, addr) = code.layout.addr_of(sym, index as i64)?;
        self.mem[bank as usize].get(addr as usize).copied()
    }

    /// Reads a register (mainly for tests and the self-test generator).
    pub fn reg(&self, r: RegId) -> i64 {
        *self.regs.get(&r).unwrap_or(&0)
    }

    /// The current state of mode `m`; `false` for modes the target does
    /// not declare (rather than panicking on a bad index).
    pub fn mode(&self, m: usize) -> bool {
        self.modes.get(m).copied().unwrap_or(false)
    }

    /// Executes a program to completion.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; the machine state is left as-at-failure.
    pub fn run(&mut self, code: &Code) -> Result<RunResult, SimError> {
        code.verify().map_err(SimError::Structure)?;
        let mut result = RunResult::default();
        let mut pc = 0usize;
        // (loop-start pc, trip count, counter symbol, iteration)
        let mut loops: Vec<(usize, u32, Symbol, u32)> = Vec::new();
        let mut counters: HashMap<Symbol, i64> = HashMap::new();
        let mut steps = 0u64;

        while pc < code.insns.len() {
            steps += 1;
            if steps > self.max_steps {
                return Err(SimError::StepLimit);
            }
            let insn = &code.insns[pc];
            if let Some(trace) = &mut self.trace {
                trace.push(format!("{pc:04}: {insn}"));
            }
            match &insn.kind {
                InsnKind::LoopStart { var, count } => {
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    if *count == 0 {
                        pc = matching_end(code, pc)? + 1;
                        continue;
                    }
                    loops.push((pc, *count, var.clone(), 0));
                    counters.insert(var.clone(), 0);
                    pc += 1;
                }
                InsnKind::LoopEnd => {
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    let (start, count, var, iter) =
                        loops.pop().ok_or(SimError::Structure(StructureError::StrayLoopEnd))?;
                    let next_iter = iter + 1;
                    if next_iter < count {
                        counters.insert(var.clone(), next_iter as i64);
                        loops.push((start, count, var, next_iter));
                        pc = start + 1;
                    } else {
                        counters.remove(&var);
                        pc += 1;
                    }
                }
                InsnKind::Rpt { count } => {
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    let body = code
                        .insns
                        .get(pc + 1)
                        .ok_or(SimError::Structure(StructureError::RptAtEnd))?
                        .clone();
                    for _ in 0..*count {
                        steps += 1;
                        if steps > self.max_steps {
                            return Err(SimError::StepLimit);
                        }
                        self.exec_repeatable(&body, code, &counters)?;
                        result.cycles += body.cycles as u64;
                        result.insns += 1;
                    }
                    pc += 2;
                }
                InsnKind::SetMode { mode, on } => {
                    let slot = self
                        .modes
                        .get_mut(*mode)
                        .ok_or(SimError::Structure(StructureError::UnknownMode { mode: *mode }))?;
                    *slot = *on;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::ArLoad { ar, base, disp } => {
                    let (_, addr) = code
                        .layout
                        .addr_of(base, *disp)
                        .ok_or_else(|| SimError::UnplacedSymbol(base.to_string()))?;
                    self.ar_slot(*ar)?;
                    self.ars[*ar as usize] = addr as i64;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::ArAdd { ar, delta } => {
                    self.ar_slot(*ar)?;
                    self.ars[*ar as usize] += delta;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::ArLoadIndexed { ar, base, disp, index, down } => {
                    let (ibank, iaddr) = code
                        .layout
                        .addr_of(index, 0)
                        .ok_or_else(|| SimError::UnplacedSymbol(index.to_string()))?;
                    let ivalue = self.read_mem(ibank, iaddr as i64)?;
                    let (_, addr) = code
                        .layout
                        .addr_of(base, *disp)
                        .ok_or_else(|| SimError::UnplacedSymbol(base.to_string()))?;
                    self.ar_slot(*ar)?;
                    self.ars[*ar as usize] =
                        if *down { addr as i64 - ivalue } else { addr as i64 + ivalue };
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::ArLoadMem { ar, cell } => {
                    let (bank, addr) = code
                        .layout
                        .addr_of(cell, 0)
                        .ok_or_else(|| SimError::UnplacedSymbol(cell.to_string()))?;
                    let v = self.read_mem(bank, addr as i64)?;
                    self.ar_slot(*ar)?;
                    self.ars[*ar as usize] = v;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::ArStore { ar, cell } => {
                    self.ar_slot(*ar)?;
                    let v = self.ars[*ar as usize];
                    let (bank, addr) = code
                        .layout
                        .addr_of(cell, 0)
                        .ok_or_else(|| SimError::UnplacedSymbol(cell.to_string()))?;
                    self.write_mem(bank, addr as i64, v)?;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::PtrInit { cell, base, disp } => {
                    let (_, target_addr) = code
                        .layout
                        .addr_of(base, *disp)
                        .ok_or_else(|| SimError::UnplacedSymbol(base.to_string()))?;
                    let (bank, addr) = code
                        .layout
                        .addr_of(cell, 0)
                        .ok_or_else(|| SimError::UnplacedSymbol(cell.to_string()))?;
                    self.write_mem(bank, addr as i64, target_addr as i64)?;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::Nop => {
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
                InsnKind::Compute { .. } => {
                    let insn = insn.clone();
                    self.exec_bundle(&insn, code, &counters)?;
                    result.cycles += insn.cycles as u64;
                    result.insns += 1;
                    pc += 1;
                }
            }
        }
        Ok(result)
    }

    fn exec_repeatable(
        &mut self,
        insn: &Insn,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
    ) -> Result<(), SimError> {
        match &insn.kind {
            InsnKind::Compute { .. } => self.exec_bundle(insn, code, counters),
            InsnKind::ArAdd { ar, delta } => {
                self.ar_slot(*ar)?;
                self.ars[*ar as usize] += delta;
                Ok(())
            }
            other => {
                Err(SimError::Structure(StructureError::RptOver { kind: format!("{other:?}") }))
            }
        }
    }

    fn ar_slot(&self, ar: u16) -> Result<(), SimError> {
        if (ar as usize) < self.ars.len() {
            Ok(())
        } else {
            Err(SimError::Structure(StructureError::NoSuchAddressRegister {
                ar,
                target: self.target.name.to_string(),
            }))
        }
    }

    /// Executes a bundle: all reads happen before all writes; address-
    /// register post-modifications apply afterwards, in operand order.
    fn exec_bundle(
        &mut self,
        insn: &Insn,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
    ) -> Result<(), SimError> {
        let mut writes: Vec<(Loc, i64)> = Vec::new();
        let mut posts: Vec<(u16, i8)> = Vec::new();
        self.eval_insn(insn, code, counters, &mut writes, &mut posts)?;
        for (dst, value) in writes {
            self.write_loc(&dst, value, code, counters)?;
        }
        for (ar, post) in posts {
            self.ar_slot(ar)?;
            self.ars[ar as usize] += post as i64;
        }
        Ok(())
    }

    fn eval_insn(
        &self,
        insn: &Insn,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
        writes: &mut Vec<(Loc, i64)>,
        posts: &mut Vec<(u16, i8)>,
    ) -> Result<(), SimError> {
        if let InsnKind::Compute { dst, expr } = &insn.kind {
            let saturating = insn.mode_sensitive
                && self.target.sat_mode().and_then(|m| self.modes.get(m).copied()).unwrap_or(false);
            let mut err: Option<SimError> = None;
            let value = expr.eval(self.target.word_width, saturating, &mut |loc| match self
                .read_loc(loc, code, counters, posts)
            {
                Ok(v) => v,
                Err(e) => {
                    err.get_or_insert(e);
                    0
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            // destination post-modification registers too
            if let Loc::Mem(m) = dst {
                if let AddrMode::Indirect { ar, post } = m.mode {
                    if post != 0 {
                        posts.push((ar, post));
                    }
                }
            }
            writes.push((dst.clone(), value));
        }
        for p in &insn.parallel {
            self.eval_insn(p, code, counters, writes, posts)?;
        }
        Ok(())
    }

    fn resolve(
        &self,
        m: &MemLoc,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
    ) -> Result<(Bank, i64), SimError> {
        match m.mode {
            AddrMode::Direct(a) => Ok((m.bank, a as i64)),
            AddrMode::Indirect { ar, .. } => {
                self.ar_slot(ar)?;
                Ok((m.bank, self.ars[ar as usize]))
            }
            AddrMode::Unresolved => {
                let index = match &m.index {
                    None => 0,
                    Some(var) => {
                        let i = *counters
                            .get(var)
                            .ok_or_else(|| SimError::UnknownCounter(var.to_string()))?;
                        if m.down {
                            -i
                        } else {
                            i
                        }
                    }
                };
                let (bank, addr) = code
                    .layout
                    .addr_of(&m.base, m.disp + index)
                    .ok_or_else(|| SimError::UnplacedSymbol(m.base.to_string()))?;
                Ok((bank, addr as i64))
            }
        }
    }

    fn read_loc(
        &self,
        loc: &Loc,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
        posts: &mut Vec<(u16, i8)>,
    ) -> Result<i64, SimError> {
        match loc {
            Loc::Imm(v) => Ok(record_ir::ops::wrap_to_width(*v, self.target.word_width)),
            Loc::Reg(r) => Ok(self.reg(*r)),
            Loc::Mem(m) => {
                let (bank, addr) = self.resolve(m, code, counters)?;
                if let AddrMode::Indirect { ar, post } = m.mode {
                    if post != 0 {
                        posts.push((ar, post));
                    }
                }
                self.read_mem(bank, addr)
            }
        }
    }

    fn write_loc(
        &mut self,
        loc: &Loc,
        value: i64,
        code: &Code,
        counters: &HashMap<Symbol, i64>,
    ) -> Result<(), SimError> {
        match loc {
            Loc::Imm(_) => Err(SimError::Structure(StructureError::ImmediateDestination)),
            Loc::Reg(r) => {
                self.regs.insert(*r, value);
                Ok(())
            }
            Loc::Mem(m) => {
                let (bank, addr) = self.resolve(m, code, counters)?;
                self.write_mem(bank, addr, value)
            }
        }
    }

    fn read_mem(&self, bank: Bank, addr: i64) -> Result<i64, SimError> {
        let ix = usize::try_from(addr).map_err(|_| SimError::AddressOutOfRange { bank, addr })?;
        self.mem[bank as usize].get(ix).copied().ok_or(SimError::AddressOutOfRange { bank, addr })
    }

    fn write_mem(&mut self, bank: Bank, addr: i64, value: i64) -> Result<(), SimError> {
        let ix = usize::try_from(addr).map_err(|_| SimError::AddressOutOfRange { bank, addr })?;
        let width = self.target.word_width;
        let slot = self.mem[bank as usize]
            .get_mut(ix)
            .ok_or(SimError::AddressOutOfRange { bank, addr })?;
        *slot = record_ir::ops::wrap_to_width(value, width);
        Ok(())
    }
}

/// Convenience: loads inputs, runs, and returns the final value of every
/// placed symbol.
///
/// # Errors
///
/// Propagates any [`SimError`]; unknown input symbols are an error, as is
/// a layout entry whose storage cannot be read back (a malformed layout
/// must not be silently reported as zeros).
pub fn run_program(
    code: &Code,
    target: &TargetDesc,
    inputs: &HashMap<Symbol, Vec<i64>>,
) -> Result<(HashMap<Symbol, Vec<i64>>, RunResult), SimError> {
    run_program_with_steps(code, target, inputs, DEFAULT_MAX_STEPS)
}

/// [`run_program`] with an explicit step budget instead of
/// [`DEFAULT_MAX_STEPS`] — validation harnesses pick a budget matched
/// to the program under test so a miscompiled infinite loop fails fast.
///
/// # Errors
///
/// See [`run_program`]; additionally [`SimError::StepLimit`] once
/// `max_steps` is exhausted.
pub fn run_program_with_steps(
    code: &Code,
    target: &TargetDesc,
    inputs: &HashMap<Symbol, Vec<i64>>,
    max_steps: u64,
) -> Result<(HashMap<Symbol, Vec<i64>>, RunResult), SimError> {
    let mut machine = Machine::new(target).with_max_steps(max_steps);
    for (sym, values) in inputs {
        for (i, v) in values.iter().enumerate() {
            machine.poke(sym, i as u32, *v, code)?;
        }
    }
    let result = machine.run(code)?;
    let mut outputs = HashMap::new();
    for entry in code.layout.entries() {
        let mut values = Vec::with_capacity(entry.len as usize);
        for i in 0..entry.len {
            let v = machine
                .peek(&entry.sym, i, code)
                .ok_or_else(|| SimError::UnplacedSymbol(format!("{}[{i}]", entry.sym)))?;
            values.push(v);
        }
        outputs.insert(entry.sym.clone(), values);
    }
    Ok((outputs, result))
}

fn matching_end(code: &Code, start: usize) -> Result<usize, SimError> {
    let mut depth = 0i32;
    for (i, insn) in code.insns.iter().enumerate().skip(start) {
        match insn.kind {
            InsnKind::LoopStart { .. } => depth += 1,
            InsnKind::LoopEnd => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err(SimError::Structure(StructureError::NoMatchingLoopEnd { index: start }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_ir::BinOp;
    use record_isa::SemExpr;

    fn t() -> TargetDesc {
        record_isa::targets::tic25::target()
    }

    fn mem(name: &str) -> Loc {
        Loc::Mem(MemLoc::scalar(name))
    }

    fn code_with_layout(syms: &[(&str, u32)]) -> Code {
        let mut code = Code::default();
        let mut addr = 0u16;
        for (s, len) in syms {
            code.layout.place(Symbol::new(*s), addr, *len, Bank::X);
            addr += *len as u16;
        }
        code
    }

    #[test]
    fn computes_and_counts_cycles() {
        let target = t();
        let mut code = code_with_layout(&[("x", 1), ("y", 1), ("z", 1)]);
        code.insns.push(Insn::compute(
            mem("z"),
            SemExpr::bin(BinOp::Add, SemExpr::loc(mem("x")), SemExpr::loc(mem("y"))),
            "ADDM",
            1,
            2,
        ));
        let inputs: HashMap<Symbol, Vec<i64>> =
            [(Symbol::new("x"), vec![20]), (Symbol::new("y"), vec![22])].into_iter().collect();
        let (out, result) = run_program(&code, &target, &inputs).unwrap();
        assert_eq!(out[&Symbol::new("z")], vec![42]);
        assert_eq!(result.cycles, 2);
        assert_eq!(result.insns, 1);
    }

    #[test]
    fn loops_iterate_with_counter_resolution() {
        let target = t();
        let mut code = code_with_layout(&[("a", 4), ("y", 1)]);
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
            "LOOP 4",
            2,
            2,
        ));
        let a_i = MemLoc {
            base: Symbol::new("a"),
            disp: 0,
            index: Some(Symbol::new("i")),
            down: false,
            bank: Bank::X,
            mode: AddrMode::Unresolved,
        };
        code.insns.push(Insn::compute(
            mem("y"),
            SemExpr::bin(BinOp::Add, SemExpr::loc(mem("y")), SemExpr::loc(Loc::Mem(a_i))),
            "ACCUM",
            1,
            1,
        ));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        let inputs: HashMap<Symbol, Vec<i64>> =
            [(Symbol::new("a"), vec![1, 2, 3, 4])].into_iter().collect();
        let (out, result) = run_program(&code, &target, &inputs).unwrap();
        assert_eq!(out[&Symbol::new("y")], vec![10]);
        // 2 (init) + 4*(1+3) = 18 cycles
        assert_eq!(result.cycles, 18);
    }

    #[test]
    fn indirect_post_increment_walks_memory() {
        let target = t();
        let mut code = code_with_layout(&[("a", 3), ("y", 1)]);
        code.insns.push(Insn::ctrl(
            InsnKind::ArLoad { ar: 0, base: Symbol::new("a"), disp: 0 },
            "LRLK AR0,#a",
            2,
            2,
        ));
        let walk = MemLoc {
            base: Symbol::new("a"),
            disp: 0,
            index: None,
            down: false,
            bank: Bank::X,
            mode: AddrMode::Indirect { ar: 0, post: 1 },
        };
        code.insns.push(Insn::ctrl(InsnKind::Rpt { count: 3 }, "RPTK 3", 1, 1));
        code.insns.push(Insn::compute(
            mem("y"),
            SemExpr::bin(BinOp::Add, SemExpr::loc(mem("y")), SemExpr::loc(Loc::Mem(walk))),
            "ADD *+",
            1,
            1,
        ));
        let inputs: HashMap<Symbol, Vec<i64>> =
            [(Symbol::new("a"), vec![5, 6, 7])].into_iter().collect();
        let (out, result) = run_program(&code, &target, &inputs).unwrap();
        assert_eq!(out[&Symbol::new("y")], vec![18]);
        assert_eq!(result.cycles, 2 + 1 + 3);
    }

    #[test]
    fn parallel_bundle_reads_before_writes() {
        // swap x and y in one bundle: only correct with read-before-write
        let target = t();
        let mut code = code_with_layout(&[("x", 1), ("y", 1)]);
        let mut main = Insn::mov(mem("x"), mem("y"), "MOV x,y", 1, 1);
        main.parallel.push(Insn::mov(mem("y"), mem("x"), "MOV y,x", 0, 0));
        code.insns.push(main);
        let inputs: HashMap<Symbol, Vec<i64>> =
            [(Symbol::new("x"), vec![1]), (Symbol::new("y"), vec![2])].into_iter().collect();
        let (out, _) = run_program(&code, &target, &inputs).unwrap();
        assert_eq!(out[&Symbol::new("x")], vec![2]);
        assert_eq!(out[&Symbol::new("y")], vec![1]);
    }

    #[test]
    fn saturation_mode_affects_mode_sensitive_insns() {
        let target = t();
        let mut code = code_with_layout(&[("x", 1), ("y", 1), ("z", 1)]);
        code.insns.push(Insn::ctrl(InsnKind::SetMode { mode: 0, on: true }, "SOVM", 1, 1));
        let mut add = Insn::compute(
            mem("z"),
            SemExpr::bin(BinOp::Add, SemExpr::loc(mem("x")), SemExpr::loc(mem("y"))),
            "ADD",
            1,
            1,
        );
        add.mode_sensitive = true;
        code.insns.push(add.clone());
        let inputs: HashMap<Symbol, Vec<i64>> =
            [(Symbol::new("x"), vec![30000]), (Symbol::new("y"), vec![10000])]
                .into_iter()
                .collect();
        let (out, _) = run_program(&code, &target, &inputs).unwrap();
        assert_eq!(out[&Symbol::new("z")], vec![32767], "saturated");

        // without SOVM the same instruction wraps
        let mut code2 = code_with_layout(&[("x", 1), ("y", 1), ("z", 1)]);
        code2.insns.push(add);
        let (out2, _) = run_program(&code2, &target, &inputs).unwrap();
        assert_eq!(out2[&Symbol::new("z")], vec![record_ir::ops::wrap_to_width(40000, 16)]);
    }

    #[test]
    fn zero_trip_loops_are_skipped() {
        let target = t();
        let mut code = code_with_layout(&[("y", 1)]);
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 0 },
            "LOOP 0",
            2,
            2,
        ));
        code.insns.push(Insn::mov(mem("y"), Loc::Imm(9), "MOV", 1, 1));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        let (out, _) = run_program(&code, &target, &HashMap::new()).unwrap();
        assert_eq!(out[&Symbol::new("y")], vec![0]);
    }

    #[test]
    fn nested_loops_multiply() {
        let target = t();
        let mut code = code_with_layout(&[("y", 1)]);
        for v in ["i", "j"] {
            code.insns.push(Insn::ctrl(
                InsnKind::LoopStart { var: Symbol::new(v), count: 3 },
                "LOOP 3",
                2,
                2,
            ));
        }
        code.insns.push(Insn::compute(
            mem("y"),
            SemExpr::bin(BinOp::Add, SemExpr::loc(mem("y")), SemExpr::loc(Loc::Imm(1))),
            "INC",
            1,
            1,
        ));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        let (out, _) = run_program(&code, &target, &HashMap::new()).unwrap();
        assert_eq!(out[&Symbol::new("y")], vec![9]);
    }

    #[test]
    fn step_limit_guards_runaway() {
        let target = t();
        let mut code = code_with_layout(&[("y", 1)]);
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 1000 },
            "LOOP",
            2,
            2,
        ));
        code.insns.push(Insn::nop());
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        let mut m = Machine::new(&target).with_max_steps(100);
        assert_eq!(m.run(&code), Err(SimError::StepLimit));
    }

    #[test]
    fn unplaced_symbol_reported() {
        let target = t();
        let mut code = Code::default();
        code.insns.push(Insn::mov(mem("y"), Loc::Imm(1), "MOV", 1, 1));
        let mut m = Machine::new(&target);
        assert!(matches!(m.run(&code), Err(SimError::UnplacedSymbol(_))));
    }

    #[test]
    fn setmode_on_undeclared_mode_is_an_error_not_a_panic() {
        // a target with no modes at all
        let target = record_isa::targets::simple_risc::target(8);
        assert!(target.modes.is_empty());
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(InsnKind::SetMode { mode: 0, on: true }, "SOVM", 1, 1));
        let mut m = Machine::new(&target);
        assert!(matches!(m.run(&code), Err(SimError::Structure(_))));
        // out-of-range mode index on a target that does have modes
        let target2 = t();
        let mut code2 = Code::default();
        code2.insns.push(Insn::ctrl(
            InsnKind::SetMode { mode: target2.modes.len(), on: true },
            "S??",
            1,
            1,
        ));
        let mut m2 = Machine::new(&target2);
        assert!(matches!(m2.run(&code2), Err(SimError::Structure(_))));
    }

    #[test]
    fn mode_accessor_tolerates_bad_index() {
        let target = record_isa::targets::simple_risc::target(8);
        let m = Machine::new(&target);
        assert!(!m.mode(7));
    }

    #[test]
    fn unreadable_outputs_are_an_error_not_zeros() {
        let target = t();
        let mut code = Code::default();
        // placed beyond the end of bank memory: nothing can read it back
        let far = target.memory.words_per_bank;
        code.layout.place(Symbol::new("ghost"), far + 100, 1, Bank::X);
        let err = run_program(&code, &target, &HashMap::new()).unwrap_err();
        assert!(matches!(err, SimError::UnplacedSymbol(ref s) if s.contains("ghost")), "{err:?}");
    }

    #[test]
    fn register_reads_default_to_zero() {
        let target = t();
        let m = Machine::new(&target);
        let acc = record_isa::RegId::singleton(target.reg_class("acc").unwrap());
        assert_eq!(m.reg(acc), 0);
    }

    #[test]
    fn rpt_over_ar_add_advances() {
        let target = t();
        let mut code = code_with_layout(&[("a", 4)]);
        code.insns.push(Insn::ctrl(
            InsnKind::ArLoad { ar: 1, base: Symbol::new("a"), disp: 0 },
            "LRLK",
            2,
            2,
        ));
        code.insns.push(Insn::ctrl(InsnKind::Rpt { count: 3 }, "RPTK 3", 1, 1));
        code.insns.push(Insn::ctrl(InsnKind::ArAdd { ar: 1, delta: 2 }, "ADRK", 1, 1));
        let mut m = Machine::new(&target);
        m.run(&code).unwrap();
        assert_eq!(m.ars[1], 6);
    }
}

//! Hand-rolled JSON: escaping, number formatting, and a tiny validating
//! parser.
//!
//! The build container has no crates.io access, so the exporters cannot
//! depend on `serde`; this module supplies the small slice of JSON the
//! tracing layer actually needs: writing string literals and numbers
//! ([`push_str_lit`], [`push_f64`]) and checking that a produced document
//! — or a JSON-lines stream — is well-formed ([`validate`],
//! [`validate_jsonl`]). The validator is also what CI and the golden
//! tests use to assert the Chrome-trace output parses.

use std::fmt;

/// Appends `s` to `out` as a JSON string literal, quotes included.
///
/// Control characters, quotes and backslashes are escaped per RFC 8259;
/// everything else (including multi-byte UTF-8) passes through verbatim.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite values (which JSON cannot
/// represent) become `null`; integral values print without a fraction.
pub fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Where and why a document failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Maximum array/object nesting the validator accepts (it recurses).
const MAX_DEPTH: usize = 512;

/// Checks that `s` is exactly one well-formed JSON document.
///
/// # Errors
///
/// [`JsonError`] locating the first violation.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let bytes = s.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    pos = value(bytes, pos, 0)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(JsonError { pos, what: "trailing characters after document" });
    }
    Ok(())
}

/// Checks that every non-empty line of `s` is a well-formed JSON document
/// (the JSON-lines contract of [`Tracer::write_jsonl`](crate::Tracer::write_jsonl)).
///
/// # Errors
///
/// The first offending line's error, with `pos` relative to that line.
pub fn validate_jsonl(s: &str) -> Result<(), JsonError> {
    for line in s.lines() {
        if !line.trim().is_empty() {
            validate(line)?;
        }
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

/// Parses one value starting at `pos`, returning the position just past
/// it.
fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError { pos, what: "nesting too deep" });
    }
    match b.get(pos) {
        None => Err(JsonError { pos, what: "unexpected end of input" }),
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(_) => Err(JsonError { pos, what: "expected a value" }),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, JsonError> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(JsonError { pos, what: "bad literal (true/false/null)" })
    }
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, JsonError> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        _ => return Err(JsonError { pos: start, what: "bad number" }),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(JsonError { pos, what: "digit expected after decimal point" });
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(JsonError { pos, what: "digit expected in exponent" });
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, JsonError> {
    pos += 1; // opening quote
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(pos + 2..pos + 6)
                        .ok_or(JsonError { pos, what: "truncated \\u escape" })?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(JsonError { pos, what: "bad \\u escape" });
                    }
                    pos += 6;
                }
                _ => return Err(JsonError { pos, what: "bad escape" }),
            },
            0x00..=0x1F => return Err(JsonError { pos, what: "raw control character in string" }),
            _ => pos += 1,
        }
    }
    Err(JsonError { pos, what: "unterminated string" })
}

fn array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, JsonError> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(JsonError { pos, what: "expected ',' or ']'" }),
        }
    }
}

fn object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, JsonError> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(JsonError { pos, what: "expected a string key" });
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(JsonError { pos, what: "expected ':'" });
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(JsonError { pos, what: "expected ',' or '}'" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        for nasty in ["plain", "quo\"te", "back\\slash", "new\nline", "tab\tcr\r", "nul\u{01}"] {
            let mut out = String::new();
            push_str_lit(&mut out, nasty);
            validate(&out).unwrap_or_else(|e| panic!("{nasty:?} -> {out}: {e}"));
        }
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\nc");
        assert_eq!(out, "\"a\\\"b\\nc\"");
    }

    #[test]
    fn numbers_render_valid_json() {
        for (v, want) in [(1.0, "1"), (-2.5, "-2.5"), (0.0, "0"), (f64::NAN, "null")] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, want);
            validate(&out).unwrap();
        }
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi\\u0041\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            "{\"a\": {\"b\": [1, \"x\", null]}, \"c\": false}",
            "  {\"trailing_ws\": 1}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn jsonl_checks_every_line() {
        validate_jsonl("{\"a\":1}\n{\"b\":2}\n\n").unwrap();
        assert!(validate_jsonl("{\"a\":1}\n{oops}\n").is_err());
    }
}

//! Hand-rolled JSON: escaping, number formatting, and a tiny validating
//! parser.
//!
//! The build container has no crates.io access, so the exporters cannot
//! depend on `serde`; this module supplies the small slice of JSON the
//! tracing layer actually needs: writing string literals and numbers
//! ([`push_str_lit`], [`push_f64`]) and checking that a produced document
//! — or a JSON-lines stream — is well-formed ([`validate`],
//! [`validate_jsonl`]). The validator is also what CI and the golden
//! tests use to assert the Chrome-trace output parses.

use std::fmt;

/// Appends `s` to `out` as a JSON string literal, quotes included.
///
/// Control characters, quotes and backslashes are escaped per RFC 8259;
/// everything else (including multi-byte UTF-8) passes through verbatim.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite values (which JSON cannot
/// represent) become `null`; integral values print without a fraction.
pub fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Where and why a document failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Maximum array/object nesting the validator accepts (it recurses).
const MAX_DEPTH: usize = 512;

/// Checks that `s` is exactly one well-formed JSON document.
///
/// # Errors
///
/// [`JsonError`] locating the first violation.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let bytes = s.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    pos = value(bytes, pos, 0)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(JsonError { pos, what: "trailing characters after document" });
    }
    Ok(())
}

/// Checks that every non-empty line of `s` is a well-formed JSON document
/// (the JSON-lines contract of [`Tracer::write_jsonl`](crate::Tracer::write_jsonl)).
///
/// # Errors
///
/// The first offending line's error, with `pos` relative to that line.
pub fn validate_jsonl(s: &str) -> Result<(), JsonError> {
    for line in s.lines() {
        if !line.trim().is_empty() {
            validate(line)?;
        }
    }
    Ok(())
}

/// A parsed JSON value — the minimal tree the perf-gate tooling needs to
/// diff two benchmark documents without a serde dependency.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (keys are not deduplicated).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `s` as exactly one JSON document into a [`Value`] tree.
///
/// # Errors
///
/// [`JsonError`] locating the first violation.
pub fn parse(s: &str) -> Result<Value, JsonError> {
    validate(s)?;
    let bytes = s.as_bytes();
    let pos = skip_ws(bytes, 0);
    let (v, _) = parse_value(bytes, pos)?;
    Ok(v)
}

/// Parses the (pre-validated) value at `pos`, returning it and the
/// position just past it. Validation has already run, so structural
/// errors here are unreachable; the `Err` arm only covers `\u` escapes
/// that decode to unpaired surrogates.
fn parse_value(b: &[u8], pos: usize) -> Result<(Value, usize), JsonError> {
    match b.get(pos) {
        Some(b'{') => {
            let mut members = Vec::new();
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b'}') {
                return Ok((Value::Object(members), pos + 1));
            }
            loop {
                let (key, p) = parse_string(b, pos)?;
                pos = skip_ws(b, p);
                pos = skip_ws(b, pos + 1); // ':'
                let (v, p) = parse_value(b, pos)?;
                members.push((key, v));
                pos = skip_ws(b, p);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    _ => return Ok((Value::Object(members), pos + 1)), // '}'
                }
            }
        }
        Some(b'[') => {
            let mut items = Vec::new();
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b']') {
                return Ok((Value::Array(items), pos + 1));
            }
            loop {
                let (v, p) = parse_value(b, pos)?;
                items.push(v);
                pos = skip_ws(b, p);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    _ => return Ok((Value::Array(items), pos + 1)), // ']'
                }
            }
        }
        Some(b'"') => {
            let (s, p) = parse_string(b, pos)?;
            Ok((Value::String(s), p))
        }
        Some(b't') => Ok((Value::Bool(true), pos + 4)),
        Some(b'f') => Ok((Value::Bool(false), pos + 5)),
        Some(b'n') => Ok((Value::Null, pos + 4)),
        _ => {
            let end = number(b, pos).expect("pre-validated number");
            let text = std::str::from_utf8(&b[pos..end]).expect("ASCII number");
            let n = text.parse::<f64>().map_err(|_| JsonError { pos, what: "bad number" })?;
            Ok((Value::Number(n), end))
        }
    }
}

/// Decodes the (pre-validated) string literal at `pos`.
fn parse_string(b: &[u8], mut pos: usize) -> Result<(String, usize), JsonError> {
    let start = pos;
    pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok((out, pos + 1)),
            b'\\' => match b[pos + 1] {
                b'"' => {
                    out.push('"');
                    pos += 2;
                }
                b'\\' => {
                    out.push('\\');
                    pos += 2;
                }
                b'/' => {
                    out.push('/');
                    pos += 2;
                }
                b'b' => {
                    out.push('\u{08}');
                    pos += 2;
                }
                b'f' => {
                    out.push('\u{0C}');
                    pos += 2;
                }
                b'n' => {
                    out.push('\n');
                    pos += 2;
                }
                b'r' => {
                    out.push('\r');
                    pos += 2;
                }
                b't' => {
                    out.push('\t');
                    pos += 2;
                }
                _ => {
                    // \uXXXX, possibly a surrogate pair
                    let hex = std::str::from_utf8(&b[pos + 2..pos + 6]).expect("hex digits");
                    let mut code = u32::from_str_radix(hex, 16).expect("pre-validated hex");
                    pos += 6;
                    if (0xD800..0xDC00).contains(&code)
                        && b.get(pos) == Some(&b'\\')
                        && b.get(pos + 1) == Some(&b'u')
                    {
                        let hex2 = std::str::from_utf8(&b[pos + 2..pos + 6]).expect("hex digits");
                        let low = u32::from_str_radix(hex2, 16).expect("pre-validated hex");
                        if (0xDC00..0xE000).contains(&low) {
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            pos += 6;
                        }
                    }
                    out.push(char::from_u32(code).ok_or(JsonError {
                        pos: start,
                        what: "\\u escape is an unpaired surrogate",
                    })?);
                }
            },
            _ => {
                // copy one UTF-8 scalar verbatim
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&b[pos..pos + len]).expect("valid UTF-8 input"));
                pos += len;
            }
        }
    }
    unreachable!("pre-validated string is terminated")
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

/// Parses one value starting at `pos`, returning the position just past
/// it.
fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError { pos, what: "nesting too deep" });
    }
    match b.get(pos) {
        None => Err(JsonError { pos, what: "unexpected end of input" }),
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(_) => Err(JsonError { pos, what: "expected a value" }),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, JsonError> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(JsonError { pos, what: "bad literal (true/false/null)" })
    }
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, JsonError> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        _ => return Err(JsonError { pos: start, what: "bad number" }),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(JsonError { pos, what: "digit expected after decimal point" });
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(JsonError { pos, what: "digit expected in exponent" });
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, JsonError> {
    pos += 1; // opening quote
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(pos + 2..pos + 6)
                        .ok_or(JsonError { pos, what: "truncated \\u escape" })?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(JsonError { pos, what: "bad \\u escape" });
                    }
                    pos += 6;
                }
                _ => return Err(JsonError { pos, what: "bad escape" }),
            },
            0x00..=0x1F => return Err(JsonError { pos, what: "raw control character in string" }),
            _ => pos += 1,
        }
    }
    Err(JsonError { pos, what: "unterminated string" })
}

fn array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, JsonError> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(JsonError { pos, what: "expected ',' or ']'" }),
        }
    }
}

fn object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, JsonError> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(JsonError { pos, what: "expected a string key" });
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(JsonError { pos, what: "expected ':'" });
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos, depth + 1)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(JsonError { pos, what: "expected ',' or '}'" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        for nasty in ["plain", "quo\"te", "back\\slash", "new\nline", "tab\tcr\r", "nul\u{01}"] {
            let mut out = String::new();
            push_str_lit(&mut out, nasty);
            validate(&out).unwrap_or_else(|e| panic!("{nasty:?} -> {out}: {e}"));
        }
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\nc");
        assert_eq!(out, "\"a\\\"b\\nc\"");
    }

    #[test]
    fn numbers_render_valid_json() {
        for (v, want) in [(1.0, "1"), (-2.5, "-2.5"), (0.0, "0"), (f64::NAN, "null")] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, want);
            validate(&out).unwrap();
        }
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi\\u0041\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            "{\"a\": {\"b\": [1, \"x\", null]}, \"c\": false}",
            "  {\"trailing_ws\": 1}  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn parser_builds_the_value_tree() {
        let v = parse("{\"a\": [1, -2.5, \"x\\n\"], \"b\": {\"c\": true}, \"d\": null}").unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_array),
            Some(&[Value::Number(1.0), Value::Number(-2.5), Value::String("x\n".into())][..])
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Value::String("😀".into()));
        assert!(parse("{oops}").is_err());
    }

    #[test]
    fn parser_round_trips_rendered_strings() {
        for nasty in ["plain", "quo\"te", "back\\slash", "new\nline", "tab\tcr\r", "nul\u{01}"] {
            let mut out = String::new();
            push_str_lit(&mut out, nasty);
            assert_eq!(parse(&out).unwrap(), Value::String(nasty.into()), "{out}");
        }
    }

    #[test]
    fn jsonl_checks_every_line() {
        validate_jsonl("{\"a\":1}\n{\"b\":2}\n\n").unwrap();
        assert!(validate_jsonl("{\"a\":1}\n{oops}\n").is_err());
    }
}

//! A session-level metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministic (sorted-name) ordering.
//!
//! The registry is thread-safe behind one mutex; for hot paths (the
//! batch compile workers) the intended pattern is a *worker-local*
//! registry that is [`merge`](MetricsRegistry::merge)d into the shared
//! one when the worker joins, so the lock is taken once per worker
//! rather than once per observation.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

use crate::json;

/// Counter bumped (in the destination registry) for every metric a
/// [`MetricsRegistry::merge`] had to refuse — a histogram arriving with
/// different bucket bounds, or a metric arriving under a name already
/// registered as a different type.
pub const MERGE_ERRORS: &str = "trace_merge_errors";

/// Escapes a label *value* for the Prometheus exposition format:
/// backslash, double quote and line feed must be written as `\\`, `\"`
/// and `\n` — label values are attacker-influenced (kernel names flow
/// into them), and an unescaped quote or newline would let one hostile
/// name corrupt the whole scrape.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The canonical registry key for `name` under `labels`:
/// `name{k="v",...}` with each value escaped by [`escape_label_value`].
/// With no labels the key is just `name`. Labeled and unlabeled series
/// of the same name coexist; [`MetricsRegistry::merge`] matches on the
/// full key, so per-label series fold independently.
pub fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(&escape_label_value(v));
        key.push('"');
    }
    key.push('}');
    key
}

/// Splits a registry key into its base name and (when present) the
/// brace-delimited label part, `", "`-joinable into bucket lines.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(ix) => (&key[..ix], Some(&key[ix + 1..key.len() - 1])),
        None => (key, None),
    }
}

/// One named metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value (last write wins).
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

/// A fixed-bucket histogram: `bounds` are ascending upper bounds, with an
/// implicit `+Inf` bucket at the end, so `counts.len() == bounds.len() + 1`.
/// Bucket counts are stored non-cumulatively; the Prometheus exporter
/// renders the conventional cumulative `_bucket` series.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over ascending upper `bounds` (an implicit
    /// `+Inf` bucket is appended).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend: {bounds:?}");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Records one observation into its bucket.
    pub fn observe(&mut self, v: f64) {
        let ix = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[ix] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated by deterministic
    /// linear interpolation within the fixed buckets — the same
    /// estimate `histogram_quantile` computes server-side, but without
    /// a Prometheus in the loop, so p50/p99 gates can run in tests and
    /// CI on the raw registry.
    ///
    /// The distribution is assumed non-negative (the first bucket
    /// interpolates from 0); a quantile landing in the implicit `+Inf`
    /// bucket reports the highest finite bound, which *under*-estimates
    /// — pick bounds that comfortably cover any value a gate must
    /// detect. Empty histograms report 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let before = cumulative;
            cumulative += c;
            if c > 0 && cumulative as f64 >= rank {
                if i == self.bounds.len() {
                    return self.bounds.last().copied().unwrap_or(0.0);
                }
                let upper = self.bounds[i];
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((rank - before as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Adds `other`'s observations into `self`. Returns `false` — and
    /// changes *nothing* — when the bucket bounds differ: folding counts
    /// into foreign buckets would silently corrupt the distribution,
    /// which is exactly the bug this used to have (a `debug_assert!`
    /// that release builds compiled away, followed by a wrong-bucket
    /// merge). [`MetricsRegistry::merge`] turns a refusal into a
    /// `trace_merge_errors` count.
    #[must_use]
    fn absorb(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        true
    }
}

/// A thread-safe registry of named metrics with deterministic ordering.
///
/// ```
/// use record_trace::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.inc("compiles_total");
/// m.observe("latency_us", &[100.0, 1000.0], 250.0);
/// let text = m.render_prometheus();
/// assert!(text.contains("compiles_total 1"));
/// assert!(text.contains("latency_us_bucket{le=\"1000\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "{name} is not a counter: {other:?}"),
        }
    }

    /// Adds 1 to the counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name` under `labels` (one independent
    /// series per distinct label set; values escaped at key time, so
    /// hostile label values can never break the exposition text).
    pub fn add_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        self.add(&labeled_key(name, labels), n);
    }

    /// Adds 1 to the counter `name` under `labels`.
    pub fn inc_with(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_with(name, labels, 1);
    }

    /// Sets the gauge `name` under `labels` to `v`.
    pub fn set_gauge_with(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.set_gauge(&labeled_key(name, labels), v);
    }

    /// Records `v` into the histogram `name` under `labels`.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        self.observe(&labeled_key(name, labels), bounds, v);
    }

    /// Convenience: the counter `name` under `labels` (0 when absent).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counter(&labeled_key(name, labels))
    }

    /// Sums every counter series of `name` across all label sets (the
    /// bare unlabeled series included).
    pub fn counter_sum(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner
            .iter()
            .filter(|(key, _)| split_key(key).0 == name)
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c),
                _ => None,
            })
            .sum()
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.entry(name.to_string()).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram `name`, creating it with `bounds`
    /// on first use (later calls must pass the same bounds).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.observe(v),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    }

    /// The current value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().expect("metrics lock").get(name).cloned()
    }

    /// Convenience: the counter `name`'s value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(c)) => c,
            _ => 0,
        }
    }

    /// Every metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.inner.lock().expect("metrics lock").clone()
    }

    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take `other`'s value. This is the worker-join aggregation path.
    ///
    /// An incompatible pair — a counter arriving under a gauge's name,
    /// or two histograms with different bucket bounds — **refuses to
    /// merge**: the existing metric is left untouched, the incoming one
    /// dropped, and the [`MERGE_ERRORS`] counter (`trace_merge_errors`)
    /// incremented in `self`, so the corruption is counted instead of
    /// silently folded into the wrong buckets.
    pub fn merge(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot();
        let mut inner = self.inner.lock().expect("metrics lock");
        let mut refused = 0u64;
        for (name, metric) in theirs {
            match (inner.get_mut(&name), metric) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => *a = b,
                (Some(Metric::Histogram(a)), Metric::Histogram(ref b)) => {
                    if !a.absorb(b) {
                        refused += 1;
                    }
                }
                (Some(_), _) => refused += 1,
                (None, metric) => {
                    inner.insert(name, metric);
                }
            }
        }
        if refused > 0 {
            // if the error counter itself was registered as something
            // else, there is nothing sane left to do but leave it alone
            if let Metric::Counter(c) =
                inner.entry(MERGE_ERRORS.to_string()).or_insert(Metric::Counter(0))
            {
                *c += refused;
            }
        }
    }

    /// Renders the registry as flat Prometheus-style exposition text,
    /// metrics sorted by name, histograms as cumulative `_bucket` /
    /// `_sum` / `_count` series. Labeled series (registered through the
    /// `*_with` methods) render with their label sets; a `# TYPE` line
    /// is emitted once per base name even when many label sets share it.
    /// Every metric block — and the document itself — ends with a
    /// trailing newline, and label values arrive pre-escaped
    /// ([`escape_label_value`]), so hostile kernel names can never smear
    /// one series into the next.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed_bases = std::collections::BTreeSet::new();
        for (key, metric) in self.snapshot() {
            let (base, labels) = split_key(&key);
            let mut typed = |t: &str, out: &mut String| {
                if typed_bases.insert(base.to_string()) {
                    out.push_str(&format!("# TYPE {base} {t}\n"));
                }
            };
            match metric {
                Metric::Counter(c) => {
                    typed("counter", &mut out);
                    out.push_str(&format!("{key} {c}\n"));
                }
                Metric::Gauge(g) => {
                    typed("gauge", &mut out);
                    let mut v = String::new();
                    json::push_f64(&mut v, g);
                    out.push_str(&format!("{key} {v}\n"));
                }
                Metric::Histogram(h) => {
                    typed("histogram", &mut out);
                    // `le` joins any existing labels inside one brace set
                    let with_le = |le: &str| match labels {
                        Some(l) => format!("{base}_bucket{{{l},le=\"{le}\"}}"),
                        None => format!("{base}_bucket{{le=\"{le}\"}}"),
                    };
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        let mut b = String::new();
                        json::push_f64(&mut b, *bound);
                        out.push_str(&format!("{} {cumulative}\n", with_le(&b)));
                    }
                    out.push_str(&format!("{} {}\n", with_le("+Inf"), h.count));
                    let mut sum = String::new();
                    json::push_f64(&mut sum, h.sum);
                    let series = |suffix: &str| match labels {
                        Some(l) => format!("{base}_{suffix}{{{l}}}"),
                        None => format!("{base}_{suffix}"),
                    };
                    out.push_str(&format!(
                        "{} {sum}\n{} {}\n",
                        series("sum"),
                        series("count"),
                        h.count
                    ));
                }
            }
        }
        debug_assert!(out.is_empty() || out.ends_with('\n'));
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Writes [`render_prometheus`](Self::render_prometheus) to `w`.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn write_prometheus(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(self.render_prometheus().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register() {
        let m = MetricsRegistry::new();
        m.inc("a_total");
        m.add("a_total", 4);
        m.set_gauge("ratio", 0.5);
        m.set_gauge("ratio", 0.75);
        assert_eq!(m.get("a_total"), Some(Metric::Counter(5)));
        assert_eq!(m.get("ratio"), Some(Metric::Gauge(0.75)));
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_fill_correctly() {
        let m = MetricsRegistry::new();
        let bounds = [10.0, 100.0];
        for v in [5.0, 10.0, 11.0, 250.0] {
            m.observe("h", &bounds, v);
        }
        let Some(Metric::Histogram(h)) = m.get("h") else { panic!("missing histogram") };
        assert_eq!(h.counts, vec![2, 1, 1], "10.0 lands in the le=10 bucket");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 276.0);
        assert_eq!(h.mean(), 69.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[10.0, 100.0, 1000.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 10 observations spread evenly through the (10, 100] bucket
        for _ in 0..10 {
            h.observe(50.0);
        }
        // rank 5 of 10, all in one bucket: halfway through (10, 100]
        assert_eq!(h.quantile(0.5), 55.0);
        assert_eq!(h.quantile(1.0), 100.0, "p100 is the bucket's upper bound");
        // first bucket interpolates from zero
        let mut lo = Histogram::new(&[10.0, 100.0]);
        lo.observe(1.0);
        lo.observe(2.0);
        assert_eq!(lo.quantile(0.5), 5.0, "half of (0, 10]");
        // a quantile in the +Inf bucket reports the last finite bound
        let mut inf = Histogram::new(&[10.0]);
        inf.observe(1e9);
        assert_eq!(inf.quantile(0.99), 10.0);
        // deterministic: same observations, same estimate
        assert_eq!(h.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0, 1000.0]);
        for v in [0.5, 3.0, 7.0, 20.0, 80.0, 500.0, 900.0, 5000.0] {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.quantile(w[0]) <= h.quantile(w[1]),
                "quantile must be monotone: q={} -> {}, q={} -> {}",
                w[0],
                h.quantile(w[0]),
                w[1],
                h.quantile(w[1])
            );
        }
    }

    #[test]
    fn merge_folds_worker_registries() {
        let shared = MetricsRegistry::new();
        shared.add("n_total", 1);
        shared.observe("h", &[10.0], 3.0);
        let local = MetricsRegistry::new();
        local.add("n_total", 2);
        local.observe("h", &[10.0], 30.0);
        local.set_gauge("g", 9.0);
        shared.merge(&local);
        assert_eq!(shared.get("n_total"), Some(Metric::Counter(3)));
        assert_eq!(shared.get("g"), Some(Metric::Gauge(9.0)));
        let Some(Metric::Histogram(h)) = shared.get("h") else { panic!() };
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn merge_refuses_mismatched_histogram_buckets() {
        // regression: this used to debug_assert (stripped in release) and
        // then fold the counts into the wrong buckets anyway
        let shared = MetricsRegistry::new();
        shared.observe("h", &[10.0, 100.0], 3.0);
        let local = MetricsRegistry::new();
        local.observe("h", &[5.0], 3.0);
        shared.merge(&local);
        let Some(Metric::Histogram(h)) = shared.get("h") else { panic!() };
        assert_eq!(h.bounds, vec![10.0, 100.0], "destination buckets untouched");
        assert_eq!(h.count, 1, "foreign observations not folded in");
        assert_eq!(shared.counter(MERGE_ERRORS), 1);
    }

    #[test]
    fn merge_refuses_type_mismatches_and_counts_them() {
        let shared = MetricsRegistry::new();
        shared.inc("x");
        shared.set_gauge("y", 1.0);
        let local = MetricsRegistry::new();
        local.set_gauge("x", 2.0); // counter vs gauge
        local.inc("y"); // gauge vs counter
        local.inc("z"); // clean
        shared.merge(&local);
        assert_eq!(shared.get("x"), Some(Metric::Counter(1)), "counter survives");
        assert_eq!(shared.get("y"), Some(Metric::Gauge(1.0)), "gauge survives");
        assert_eq!(shared.counter("z"), 1);
        assert_eq!(shared.counter(MERGE_ERRORS), 2);
    }

    #[test]
    fn prometheus_text_is_sorted_and_cumulative() {
        let m = MetricsRegistry::new();
        m.observe("zz_lat", &[1.0, 2.0], 0.5);
        m.observe("zz_lat", &[1.0, 2.0], 1.5);
        m.observe("zz_lat", &[1.0, 2.0], 99.0);
        m.inc("aa_total");
        let text = m.render_prometheus();
        let aa = text.find("aa_total").unwrap();
        let zz = text.find("zz_lat").unwrap();
        assert!(aa < zz, "sorted by name:\n{text}");
        assert!(text.contains("zz_lat_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("zz_lat_bucket{le=\"2\"} 2\n"), "cumulative: {text}");
        assert!(text.contains("zz_lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("zz_lat_count 3\n"), "{text}");
    }
}

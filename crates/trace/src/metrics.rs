//! A session-level metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministic (sorted-name) ordering.
//!
//! The registry is thread-safe behind one mutex; for hot paths (the
//! batch compile workers) the intended pattern is a *worker-local*
//! registry that is [`merge`](MetricsRegistry::merge)d into the shared
//! one when the worker joins, so the lock is taken once per worker
//! rather than once per observation.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Mutex;

use crate::json;

/// Counter bumped (in the destination registry) for every metric a
/// [`MetricsRegistry::merge`] had to refuse — a histogram arriving with
/// different bucket bounds, or a metric arriving under a name already
/// registered as a different type.
pub const MERGE_ERRORS: &str = "trace_merge_errors";

/// One named metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value (last write wins).
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

/// A fixed-bucket histogram: `bounds` are ascending upper bounds, with an
/// implicit `+Inf` bucket at the end, so `counts.len() == bounds.len() + 1`.
/// Bucket counts are stored non-cumulatively; the Prometheus exporter
/// renders the conventional cumulative `_bucket` series.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend: {bounds:?}");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    fn observe(&mut self, v: f64) {
        let ix = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[ix] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Adds `other`'s observations into `self`. Returns `false` — and
    /// changes *nothing* — when the bucket bounds differ: folding counts
    /// into foreign buckets would silently corrupt the distribution,
    /// which is exactly the bug this used to have (a `debug_assert!`
    /// that release builds compiled away, followed by a wrong-bucket
    /// merge). [`MetricsRegistry::merge`] turns a refusal into a
    /// `trace_merge_errors` count.
    #[must_use]
    fn absorb(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        true
    }
}

/// A thread-safe registry of named metrics with deterministic ordering.
///
/// ```
/// use record_trace::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.inc("compiles_total");
/// m.observe("latency_us", &[100.0, 1000.0], 250.0);
/// let text = m.render_prometheus();
/// assert!(text.contains("compiles_total 1"));
/// assert!(text.contains("latency_us_bucket{le=\"1000\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "{name} is not a counter: {other:?}"),
        }
    }

    /// Adds 1 to the counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner.entry(name.to_string()).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram `name`, creating it with `bounds`
    /// on first use (later calls must pass the same bounds).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.observe(v),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    }

    /// The current value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().expect("metrics lock").get(name).cloned()
    }

    /// Convenience: the counter `name`'s value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Metric::Counter(c)) => c,
            _ => 0,
        }
    }

    /// Every metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.inner.lock().expect("metrics lock").clone()
    }

    /// Folds `other` into `self`: counters and histograms add, gauges
    /// take `other`'s value. This is the worker-join aggregation path.
    ///
    /// An incompatible pair — a counter arriving under a gauge's name,
    /// or two histograms with different bucket bounds — **refuses to
    /// merge**: the existing metric is left untouched, the incoming one
    /// dropped, and the [`MERGE_ERRORS`] counter (`trace_merge_errors`)
    /// incremented in `self`, so the corruption is counted instead of
    /// silently folded into the wrong buckets.
    pub fn merge(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot();
        let mut inner = self.inner.lock().expect("metrics lock");
        let mut refused = 0u64;
        for (name, metric) in theirs {
            match (inner.get_mut(&name), metric) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => *a = b,
                (Some(Metric::Histogram(a)), Metric::Histogram(ref b)) => {
                    if !a.absorb(b) {
                        refused += 1;
                    }
                }
                (Some(_), _) => refused += 1,
                (None, metric) => {
                    inner.insert(name, metric);
                }
            }
        }
        if refused > 0 {
            // if the error counter itself was registered as something
            // else, there is nothing sane left to do but leave it alone
            if let Metric::Counter(c) =
                inner.entry(MERGE_ERRORS.to_string()).or_insert(Metric::Counter(0))
            {
                *c += refused;
            }
        }
    }

    /// Renders the registry as flat Prometheus-style exposition text,
    /// metrics sorted by name, histograms as cumulative `_bucket` /
    /// `_sum` / `_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                Metric::Gauge(g) => {
                    let mut v = String::new();
                    json::push_f64(&mut v, g);
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        let mut b = String::new();
                        json::push_f64(&mut b, *bound);
                        out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    let mut sum = String::new();
                    json::push_f64(&mut sum, h.sum);
                    out.push_str(&format!("{name}_sum {sum}\n{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Writes [`render_prometheus`](Self::render_prometheus) to `w`.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn write_prometheus(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(self.render_prometheus().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register() {
        let m = MetricsRegistry::new();
        m.inc("a_total");
        m.add("a_total", 4);
        m.set_gauge("ratio", 0.5);
        m.set_gauge("ratio", 0.75);
        assert_eq!(m.get("a_total"), Some(Metric::Counter(5)));
        assert_eq!(m.get("ratio"), Some(Metric::Gauge(0.75)));
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_fill_correctly() {
        let m = MetricsRegistry::new();
        let bounds = [10.0, 100.0];
        for v in [5.0, 10.0, 11.0, 250.0] {
            m.observe("h", &bounds, v);
        }
        let Some(Metric::Histogram(h)) = m.get("h") else { panic!("missing histogram") };
        assert_eq!(h.counts, vec![2, 1, 1], "10.0 lands in the le=10 bucket");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 276.0);
        assert_eq!(h.mean(), 69.0);
    }

    #[test]
    fn merge_folds_worker_registries() {
        let shared = MetricsRegistry::new();
        shared.add("n_total", 1);
        shared.observe("h", &[10.0], 3.0);
        let local = MetricsRegistry::new();
        local.add("n_total", 2);
        local.observe("h", &[10.0], 30.0);
        local.set_gauge("g", 9.0);
        shared.merge(&local);
        assert_eq!(shared.get("n_total"), Some(Metric::Counter(3)));
        assert_eq!(shared.get("g"), Some(Metric::Gauge(9.0)));
        let Some(Metric::Histogram(h)) = shared.get("h") else { panic!() };
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn merge_refuses_mismatched_histogram_buckets() {
        // regression: this used to debug_assert (stripped in release) and
        // then fold the counts into the wrong buckets anyway
        let shared = MetricsRegistry::new();
        shared.observe("h", &[10.0, 100.0], 3.0);
        let local = MetricsRegistry::new();
        local.observe("h", &[5.0], 3.0);
        shared.merge(&local);
        let Some(Metric::Histogram(h)) = shared.get("h") else { panic!() };
        assert_eq!(h.bounds, vec![10.0, 100.0], "destination buckets untouched");
        assert_eq!(h.count, 1, "foreign observations not folded in");
        assert_eq!(shared.counter(MERGE_ERRORS), 1);
    }

    #[test]
    fn merge_refuses_type_mismatches_and_counts_them() {
        let shared = MetricsRegistry::new();
        shared.inc("x");
        shared.set_gauge("y", 1.0);
        let local = MetricsRegistry::new();
        local.set_gauge("x", 2.0); // counter vs gauge
        local.inc("y"); // gauge vs counter
        local.inc("z"); // clean
        shared.merge(&local);
        assert_eq!(shared.get("x"), Some(Metric::Counter(1)), "counter survives");
        assert_eq!(shared.get("y"), Some(Metric::Gauge(1.0)), "gauge survives");
        assert_eq!(shared.counter("z"), 1);
        assert_eq!(shared.counter(MERGE_ERRORS), 2);
    }

    #[test]
    fn prometheus_text_is_sorted_and_cumulative() {
        let m = MetricsRegistry::new();
        m.observe("zz_lat", &[1.0, 2.0], 0.5);
        m.observe("zz_lat", &[1.0, 2.0], 1.5);
        m.observe("zz_lat", &[1.0, 2.0], 99.0);
        m.inc("aa_total");
        let text = m.render_prometheus();
        let aa = text.find("aa_total").unwrap();
        let zz = text.find("zz_lat").unwrap();
        assert!(aa < zz, "sorted by name:\n{text}");
        assert!(text.contains("zz_lat_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("zz_lat_bucket{le=\"2\"} 2\n"), "cumulative: {text}");
        assert!(text.contains("zz_lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("zz_lat_count 3\n"), "{text}");
    }
}

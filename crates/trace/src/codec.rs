//! Hand-rolled binary container codec — the byte-level counterpart of
//! [`json`](crate::json), and just as dependency-free.
//!
//! The compile cache and the serialized BURS tables both persist
//! structured data to disk. Neither pulls in serde; instead they encode
//! through the two primitives here:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian integers, booleans
//!   and length-prefixed strings/byte-records, with every read
//!   bounds-checked into a positioned [`CodecError`] instead of a panic.
//! * [`seal`] / [`unseal`] — the container framing: an 8-byte magic, a
//!   `u32` format version, a `u64` payload length, the payload, and an
//!   FNV-1a checksum trailer over the payload. `unseal` rejects a wrong
//!   magic, an unknown version, a truncated body and a corrupted payload
//!   — callers treat any of those as a cache miss, never a crash.
//!
//! [`StableHasher`] rounds the module out: a `std::hash::Hasher` over
//! the same FNV-1a function, for fingerprints that must be *stable
//! across processes* (the sibling `DefaultHasher` is randomly seeded and
//! documented as unfit to persist).

use std::fmt;

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the checksum and fingerprint function for
/// everything this module frames. Deterministic across processes and
/// platforms, unlike `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`std::hash::Hasher`] computing FNV-1a over the written byte
/// stream. Use it wherever a fingerprint must survive a process restart:
/// `#[derive(Hash)]` types feed it deterministically, so
/// `t.hash(&mut StableHasher::new())` yields the same value in every
/// run — which `DefaultHasher` (randomly keyed) explicitly does not.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A failed decode: where in the buffer, and what was expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the decoder had reached.
    pub pos: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for CodecError {}

/// An append-only little-endian byte encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` as its two's-complement bits.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string (`u32` length + bytes).
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends a length-prefixed byte record (`u32` length + bytes).
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(u32::try_from(b.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(&b[..b.len().min(u32::MAX as usize)]);
    }
}

/// A bounds-checked little-endian byte decoder over a borrowed slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches records with
    /// trailing garbage that a length-prefix alone would let through.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing byte(s)", self.remaining())))
        }
    }

    fn err(&self, what: impl Into<String>) -> CodecError {
        CodecError { pos: self.pos, what: what.into() }
    }

    /// Builds a [`CodecError`] at the reader's current position — for
    /// downstream decoders rejecting semantically invalid values (an
    /// unknown enum tag, an out-of-range id) the raw reads accept.
    pub fn error(&self, what: impl Into<String>) -> CodecError {
        self.err(what)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} byte(s), {} left", self.remaining())));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated buffer.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated buffer.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated buffer.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated buffer.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Reads an `i64` from its two's-complement bits.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated buffer.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("bad boolean byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let pos = self.pos;
        let b = self.bytes_record()?;
        std::str::from_utf8(b).map_err(|e| CodecError { pos, what: format!("bad UTF-8: {e}") })
    }

    /// Reads a length-prefixed byte record.
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the prefix overruns the buffer.
    pub fn bytes_record(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a `u32` element count for a sequence whose elements occupy
    /// at least `min_elem_bytes` each, rejecting counts the remaining
    /// buffer cannot possibly hold — so a corrupted length can never
    /// drive an allocation beyond the (already-read) file size.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an impossible count.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(self.err(format!("sequence length {n} overruns buffer")));
        }
        Ok(n)
    }
}

/// Frames `payload` into a versioned, checksummed container:
/// `magic (8) | version (u32) | len (u64) | payload | fnv1a(payload) (u64)`.
pub fn seal(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Opens a [`seal`]ed container, returning the payload slice.
///
/// # Errors
///
/// [`CodecError`] on a wrong magic, a version other than `version`, a
/// length that disagrees with the buffer, or a checksum mismatch —
/// i.e. on every way a file can be stale, truncated or bit-flipped.
pub fn unseal<'a>(magic: &[u8; 8], version: u32, bytes: &'a [u8]) -> Result<&'a [u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    let got_magic = r.take(8)?;
    if got_magic != magic {
        return Err(CodecError { pos: 0, what: format!("bad magic {got_magic:02x?}") });
    }
    let got_version = r.u32()?;
    if got_version != version {
        return Err(CodecError {
            pos: 8,
            what: format!("version {got_version}, expected {version}"),
        });
    }
    let len = r.u64()? as usize;
    if len != r.remaining().saturating_sub(8) {
        return Err(CodecError {
            pos: 12,
            what: format!("payload length {len} disagrees with file size {}", bytes.len()),
        });
    }
    let payload = r.take(len)?;
    let want = r.u64()?;
    r.finish()?;
    let got = fnv1a(payload);
    if got != want {
        return Err(CodecError {
            pos: bytes.len() - 8,
            what: format!("checksum {got:#018x}, trailer says {want:#018x}"),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"RECTEST\0";

    fn sample_payload() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-5);
        w.bool(true);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.into_bytes()
    }

    #[test]
    fn primitives_round_trip() {
        let bytes = sample_payload();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes_record().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let bytes = sample_payload();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            // drain until the inevitable error; must never panic
            let mut steps = 0;
            while r.remaining() > 0 && steps < 100 {
                if r.str().is_err() && r.u8().is_err() {
                    break;
                }
                steps += 1;
            }
        }
    }

    #[test]
    fn container_round_trips() {
        let sealed = seal(MAGIC, 3, b"payload bytes");
        assert_eq!(unseal(MAGIC, 3, &sealed).unwrap(), b"payload bytes");
    }

    #[test]
    fn container_rejects_every_single_bit_flip() {
        let sealed = seal(MAGIC, 1, b"some payload worth protecting");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert!(unseal(MAGIC, 1, &bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn container_rejects_truncation_and_version_skew() {
        let sealed = seal(MAGIC, 1, b"data");
        for cut in 0..sealed.len() {
            assert!(unseal(MAGIC, 1, &sealed[..cut]).is_err(), "truncation at {cut}");
        }
        assert!(unseal(MAGIC, 2, &sealed).is_err(), "wrong version accepted");
        assert!(unseal(b"RECOTHER", 1, &sealed).is_err(), "wrong magic accepted");
    }

    #[test]
    fn bad_boolean_and_utf8_are_errors() {
        let mut w = ByteWriter::new();
        w.u8(9);
        let b = w.into_bytes();
        assert!(ByteReader::new(&b).bool().is_err());
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let b = w.into_bytes();
        assert!(ByteReader::new(&b).str().is_err());
    }

    #[test]
    fn seq_len_rejects_impossible_counts() {
        let mut w = ByteWriter::new();
        w.u32(1_000_000); // claims a million elements, provides none
        let b = w.into_bytes();
        assert!(ByteReader::new(&b).seq_len(4).is_err());
    }

    #[test]
    fn stable_hasher_is_deterministic_and_matches_fnv() {
        use std::hash::{Hash, Hasher};
        let mut h = StableHasher::new();
        h.write(b"abc");
        assert_eq!(h.finish(), fnv1a(b"abc"));
        let fp = |s: &str| {
            let mut h = StableHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(fp("kernel"), fp("kernel"));
        assert_ne!(fp("kernel"), fp("kernex"));
    }
}

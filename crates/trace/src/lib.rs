//! `record-trace` — dependency-free structured tracing and metrics.
//!
//! The compiler's evaluation (Table 1, the phase breakdown, the ablation
//! benches) hinges on *measuring* it. This crate supplies the
//! machine-readable layer those measurements flow through:
//!
//! * [`SpanRecorder`] — a cheap, single-threaded builder of hierarchical
//!   [`Span`] trees with typed [`Event`]s and attributes. A disabled
//!   recorder ([`SpanRecorder::disabled`]) is a no-op costing one branch
//!   per call, so tracing can stay threaded through the hot path
//!   unconditionally.
//! * [`Tracer`] — the shared, thread-safe collector: every compile's
//!   finished span tree is [`submit`](Tracer::submit)ted to it, tagged
//!   with a per-thread lane so batch workers stay distinguishable.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   with deterministic ordering (see [`metrics`]).
//! * Exporters — JSON-lines ([`Tracer::write_jsonl`]), Chrome trace-event
//!   format ([`Tracer::write_chrome_trace`], loadable in Perfetto or
//!   `chrome://tracing`) and Prometheus-style text
//!   ([`MetricsRegistry::write_prometheus`]). All JSON is hand-rolled
//!   ([`json`]) — no serde — and validated by the vendored checker
//!   ([`json::validate`]).
//!
//! Everything is deterministic modulo timestamps; [`Tracer::fake_clock`]
//! replaces wall time with a tick-per-call counter for byte-stable
//! golden tests.
//!
//! ```
//! use record_trace::Tracer;
//!
//! let tracer = Tracer::fake_clock();
//! let mut rec = tracer.recorder();
//! rec.open("compile");
//! rec.attr("kernel", "fir");
//! rec.open("select");
//! rec.event("cover", &[("variants", 12i64.into())]);
//! rec.close();
//! rec.close();
//! tracer.submit(rec);
//! let mut out = Vec::new();
//! tracer.write_chrome_trace(&mut out).unwrap();
//! record_trace::json::validate(std::str::from_utf8(&out).unwrap()).unwrap();
//! ```

pub mod codec;
pub mod flight;
pub mod json;
pub mod metrics;

pub use flight::{FlightRecorder, RequestRecord};
pub use metrics::{
    escape_label_value, labeled_key, Histogram, Metric, MetricsRegistry, MERGE_ERRORS,
};

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

// --------------------------------------------------------------------------
// Clock
// --------------------------------------------------------------------------

/// A microsecond clock shared by a [`Tracer`] and its recorders: either
/// wall time relative to the tracer's creation, or — for byte-stable
/// tests — a fake that advances one microsecond per reading.
#[derive(Clone, Debug)]
pub struct Clock(Arc<ClockInner>);

#[derive(Debug)]
enum ClockInner {
    Real(Instant),
    Fake(AtomicU64),
}

impl Clock {
    /// Wall time, in microseconds since this call.
    pub fn real() -> Self {
        Clock(Arc::new(ClockInner::Real(Instant::now())))
    }

    /// A deterministic clock: the first reading is 0, each subsequent
    /// reading is one microsecond later, regardless of wall time.
    pub fn fake() -> Self {
        Clock(Arc::new(ClockInner::Fake(AtomicU64::new(0))))
    }

    /// The current timestamp in microseconds.
    pub fn now_us(&self) -> u64 {
        match &*self.0 {
            ClockInner::Real(base) => base.elapsed().as_micros() as u64,
            ClockInner::Fake(ticks) => ticks.fetch_add(1, Ordering::Relaxed),
        }
    }
}

// --------------------------------------------------------------------------
// Spans and events
// --------------------------------------------------------------------------

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

fn push_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => out.push_str(&i.to_string()),
        AttrValue::Float(f) => json::push_f64(out, *f),
        AttrValue::Str(s) => json::push_str_lit(out, s),
        AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_lit(out, k);
        out.push(':');
        push_attr_value(out, v);
    }
    out.push('}');
}

/// A point-in-time occurrence inside (or outside) a span: salvage,
/// budget exceedance, cache hit/miss, verify failure, ….
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event name.
    pub name: String,
    /// Timestamp, microseconds on the owning tracer's clock.
    pub ts_us: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// One node of a trace: a named, timed region with attributes, events
/// and child spans.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name (for compiler passes: the `PassRecord` name).
    pub name: String,
    /// Start timestamp, microseconds.
    pub start_us: u64,
    /// End timestamp, microseconds (`>= start_us`).
    pub end_us: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Events recorded while this span was the innermost open one.
    pub events: Vec<Event>,
    /// Nested spans, in open order.
    pub children: Vec<Span>,
}

impl Span {
    /// Duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// The first attribute named `key`, if any.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first pre-order visit of this span and its descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Span, usize)) {
        fn go<'a>(s: &'a Span, depth: usize, f: &mut impl FnMut(&'a Span, usize)) {
            f(s, depth);
            for c in &s.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }
}

// --------------------------------------------------------------------------
// SpanRecorder
// --------------------------------------------------------------------------

/// A cheap, single-threaded span-tree builder.
///
/// One recorder accompanies one compilation: the driver opens the root
/// span, each pass opens a child, events and attributes attach to the
/// innermost open span, and the finished tree is
/// [`Tracer::submit`]ted. The disabled recorder (the [`Default`]) makes
/// every method a no-op, so instrumentation can stay unconditional.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    clock: Option<Clock>,
    stack: Vec<Span>,
    roots: Vec<Span>,
    loose: Vec<Event>,
}

impl SpanRecorder {
    /// A recorder that records nothing (every call is a cheap no-op).
    pub fn disabled() -> Self {
        SpanRecorder::default()
    }

    /// A recorder stamping times from `clock` (usually obtained via
    /// [`Tracer::recorder`]).
    pub fn enabled(clock: Clock) -> Self {
        SpanRecorder { clock: Some(clock), ..Default::default() }
    }

    /// Whether this recorder is actually recording.
    pub fn is_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Opens a span named `name` nested under the innermost open span.
    pub fn open(&mut self, name: &str) {
        let Some(clock) = &self.clock else { return };
        self.stack.push(Span {
            name: name.to_string(),
            start_us: clock.now_us(),
            end_us: 0,
            attrs: Vec::new(),
            events: Vec::new(),
            children: Vec::new(),
        });
    }

    /// Closes the innermost open span.
    pub fn close(&mut self) {
        let Some(clock) = &self.clock else { return };
        let Some(mut span) = self.stack.pop() else {
            debug_assert!(false, "close() without an open span");
            return;
        };
        span.end_us = clock.now_us().max(span.start_us);
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Attaches `key = value` to the innermost open span.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if self.clock.is_none() {
            return;
        }
        if let Some(span) = self.stack.last_mut() {
            span.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Records an instant event on the innermost open span (or at the
    /// trace's top level when no span is open).
    pub fn event(&mut self, name: &str, attrs: &[(&str, AttrValue)]) {
        let Some(clock) = &self.clock else { return };
        let event = Event {
            name: name.to_string(),
            ts_us: clock.now_us(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        match self.stack.last_mut() {
            Some(span) => span.events.push(event),
            None => self.loose.push(event),
        }
    }

    /// Opens a span and returns a guard that closes it on drop — the
    /// scope-based alternative to explicit [`open`](Self::open)/
    /// [`close`](Self::close) (see also the [`span!`](crate::span) macro).
    pub fn span(&mut self, name: &str) -> SpanGuard<'_> {
        self.open(name);
        SpanGuard { rec: self }
    }

    /// Closes any still-open spans (attributing `error` to each when
    /// given) and returns the finished root spans plus top-level events.
    pub fn finish(mut self, error: Option<&str>) -> (Vec<Span>, Vec<Event>) {
        while !self.stack.is_empty() {
            if let Some(e) = error {
                self.attr("unclosed_error", e);
            }
            self.close();
        }
        (self.roots, self.loose)
    }
}

/// Closes its span when dropped; created by [`SpanRecorder::span`].
pub struct SpanGuard<'a> {
    rec: &'a mut SpanRecorder,
}

impl SpanGuard<'_> {
    /// Attaches `key = value` to the guarded span.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.rec.attr(key, value);
    }

    /// Records an event on the guarded span.
    pub fn event(&mut self, name: &str, attrs: &[(&str, AttrValue)]) {
        self.rec.event(name, attrs);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.close();
    }
}

/// Opens a scope-guarded span with optional inline attributes:
///
/// ```
/// use record_trace::{span, Tracer};
///
/// let tracer = Tracer::fake_clock();
/// let mut rec = tracer.recorder();
/// {
///     let _g = span!(rec, "select", kernel = "fir", target = "tic25");
/// } // span closes here
/// tracer.submit(rec);
/// assert_eq!(tracer.traces()[0].root.name, "select");
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $rec.span($name);
        $(guard.attr(stringify!($key), $value);)*
        guard
    }};
}

// --------------------------------------------------------------------------
// Tracer
// --------------------------------------------------------------------------

/// One finished compilation trace: the root [`Span`] plus the lane
/// (1-based worker-thread index) it was recorded on.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// 1-based lane (one per submitting thread, in first-submission
    /// order; single-threaded runs always use lane 1).
    pub lane: usize,
    /// The trace itself.
    pub root: Span,
}

#[derive(Debug, Default)]
struct TracerInner {
    lanes: HashMap<ThreadId, usize>,
    traces: Vec<TraceRecord>,
    instants: Vec<(usize, Event)>,
}

/// The shared, thread-safe trace collector.
///
/// Recorders are handed out per compile ([`recorder`](Tracer::recorder)),
/// filled single-threadedly, and [`submit`](Tracer::submit)ted back;
/// instant events outside any compile (cache hits/misses) go through
/// [`instant`](Tracer::instant). Exporters render everything collected
/// so far.
#[derive(Debug)]
pub struct Tracer {
    clock: Clock,
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer stamping wall-clock microseconds (relative to creation).
    pub fn new() -> Self {
        Tracer { clock: Clock::real(), inner: Mutex::new(TracerInner::default()) }
    }

    /// A tracer whose clock advances one microsecond per reading —
    /// deterministic timestamps for byte-stable golden tests.
    pub fn fake_clock() -> Self {
        Tracer { clock: Clock::fake(), inner: Mutex::new(TracerInner::default()) }
    }

    /// The tracer's clock (shared with its recorders).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// A fresh enabled recorder on this tracer's clock.
    pub fn recorder(&self) -> SpanRecorder {
        SpanRecorder::enabled(self.clock.clone())
    }

    /// Adopts a finished recorder: its root spans become
    /// [`TraceRecord`]s on the submitting thread's lane. Any span left
    /// open is closed first.
    pub fn submit(&self, recorder: SpanRecorder) {
        let (roots, loose) = recorder.finish(None);
        if roots.is_empty() && loose.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("tracer lock");
        let lane = lane_of(&mut inner);
        for root in roots {
            inner.traces.push(TraceRecord { lane, root });
        }
        for event in loose {
            inner.instants.push((lane, event));
        }
    }

    /// Records a top-level instant event (outside any compile's span
    /// tree) — e.g. a compiler-cache hit or miss.
    pub fn instant(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        let event = Event {
            name: name.to_string(),
            ts_us: self.clock.now_us(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        let mut inner = self.inner.lock().expect("tracer lock");
        let lane = lane_of(&mut inner);
        inner.instants.push((lane, event));
    }

    /// Snapshot of every submitted trace, in submission order.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.inner.lock().expect("tracer lock").traces.clone()
    }

    /// Snapshot of the top-level instant events, as `(lane, event)`.
    pub fn instants(&self) -> Vec<(usize, Event)> {
        self.inner.lock().expect("tracer lock").instants.clone()
    }

    /// Writes every span and event as JSON lines: one object per line,
    /// spans depth-first (`type:"span"`, with `lane`, `depth`,
    /// `start_us`, `dur_us`, `attrs`), each span's events directly after
    /// it (`type:"event"`, with `span` naming the owner), then the
    /// top-level instants.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut out = String::new();
        let inner = self.inner.lock().expect("tracer lock");
        for rec in &inner.traces {
            rec.root.walk(&mut |span, depth| {
                out.push_str("{\"type\":\"span\",\"lane\":");
                out.push_str(&rec.lane.to_string());
                out.push_str(",\"depth\":");
                out.push_str(&depth.to_string());
                out.push_str(",\"name\":");
                json::push_str_lit(&mut out, &span.name);
                out.push_str(",\"start_us\":");
                out.push_str(&span.start_us.to_string());
                out.push_str(",\"dur_us\":");
                out.push_str(&span.dur_us().to_string());
                out.push_str(",\"attrs\":");
                push_attrs(&mut out, &span.attrs);
                out.push_str("}\n");
                for event in &span.events {
                    push_jsonl_event(&mut out, rec.lane, Some(&span.name), event);
                }
            });
        }
        for (lane, event) in &inner.instants {
            push_jsonl_event(&mut out, *lane, None, event);
        }
        w.write_all(out.as_bytes())
    }

    /// Writes the collected traces in Chrome trace-event format — a
    /// `{"traceEvents": [...]}` document loadable in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans become
    /// `ph:"X"` complete events on one `tid` lane per submitting thread;
    /// span events and top-level instants become `ph:"i"` instants.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let inner = self.inner.lock().expect("tracer lock");
        let out = render_chrome_doc(inner.lanes.len().max(1), &inner.traces, &inner.instants);
        w.write_all(out.as_bytes())
    }
}

/// Renders a complete Chrome trace-event document from finished trace
/// records plus loose instant events — the shared body behind
/// [`Tracer::write_chrome_trace`] and the flight recorder's `/trace`
/// export ([`flight::FlightRecorder::render_chrome_trace`]).
pub(crate) fn render_chrome_doc(
    lanes: usize,
    traces: &[TraceRecord],
    instants: &[(usize, Event)],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for lane in 1..=lanes.max(1) {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker-{lane}\"}}}}"
        ));
    }
    for rec in traces {
        rec.root.walk(&mut |span, _| {
            push_sep(&mut out, &mut first);
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&rec.lane.to_string());
            out.push_str(",\"name\":");
            json::push_str_lit(&mut out, &span.name);
            out.push_str(",\"ts\":");
            out.push_str(&span.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&span.dur_us().to_string());
            out.push_str(",\"args\":");
            push_attrs(&mut out, &span.attrs);
            out.push('}');
            for event in &span.events {
                push_sep(&mut out, &mut first);
                push_chrome_instant(&mut out, rec.lane, event);
            }
        });
    }
    for (lane, event) in instants {
        push_sep(&mut out, &mut first);
        push_chrome_instant(&mut out, *lane, event);
    }
    out.push_str("]}\n");
    out
}

fn lane_of(inner: &mut TracerInner) -> usize {
    let next = inner.lanes.len() + 1;
    *inner.lanes.entry(std::thread::current().id()).or_insert(next)
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

fn push_jsonl_event(out: &mut String, lane: usize, span: Option<&str>, event: &Event) {
    out.push_str("{\"type\":\"event\",\"lane\":");
    out.push_str(&lane.to_string());
    if let Some(span) = span {
        out.push_str(",\"span\":");
        json::push_str_lit(out, span);
    }
    out.push_str(",\"name\":");
    json::push_str_lit(out, &event.name);
    out.push_str(",\"ts_us\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"attrs\":");
    push_attrs(out, &event.attrs);
    out.push_str("}\n");
}

fn push_chrome_instant(out: &mut String, lane: usize, event: &Event) {
    out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
    out.push_str(&lane.to_string());
    out.push_str(",\"name\":");
    json::push_str_lit(out, &event.name);
    out.push_str(",\"ts\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"args\":");
    push_attrs(out, &event.attrs);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::fake_clock();
        let mut rec = tracer.recorder();
        rec.open("compile");
        rec.attr("kernel", "fir");
        rec.open("select");
        rec.event("cover", &[("variants", 3i64.into())]);
        rec.close();
        rec.close();
        tracer.submit(rec);
        tracer.instant("cache-hit", &[("target", "tic25".into())]);
        tracer
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let tracer = sample_tracer();
        let traces = tracer.traces();
        assert_eq!(traces.len(), 1);
        let root = &traces[0].root;
        assert_eq!(root.name, "compile");
        assert_eq!(root.attr("kernel"), Some(&AttrValue::Str("fir".into())));
        assert_eq!(root.children.len(), 1);
        let select = &root.children[0];
        assert_eq!(select.name, "select");
        assert!(root.start_us < select.start_us);
        assert!(select.end_us <= root.end_us);
        assert_eq!(select.events.len(), 1);
        assert_eq!(tracer.instants().len(), 1);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut rec = SpanRecorder::disabled();
        rec.open("x");
        rec.attr("k", 1i64);
        rec.event("e", &[]);
        rec.close();
        let (roots, loose) = rec.finish(None);
        assert!(roots.is_empty() && loose.is_empty());
    }

    #[test]
    fn finish_closes_abandoned_spans_with_the_error() {
        let tracer = Tracer::fake_clock();
        let mut rec = tracer.recorder();
        rec.open("compile");
        rec.open("banks");
        let (roots, _) = rec.finish(Some("boom"));
        assert_eq!(roots.len(), 1);
        assert_eq!(
            roots[0].children[0].attr("unclosed_error"),
            Some(&AttrValue::Str("boom".into()))
        );
        assert!(roots[0].end_us >= roots[0].children[0].end_us);
    }

    #[test]
    fn exports_are_valid_json() {
        let tracer = sample_tracer();
        let mut jsonl = Vec::new();
        tracer.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        json::validate_jsonl(&jsonl).unwrap_or_else(|e| panic!("{e}:\n{jsonl}"));
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"span\":\"select\""), "event names its span: {jsonl}");

        let mut chrome = Vec::new();
        tracer.write_chrome_trace(&mut chrome).unwrap();
        let chrome = String::from_utf8(chrome).unwrap();
        json::validate(&chrome).unwrap_or_else(|e| panic!("{e}:\n{chrome}"));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"thread_name\""));
    }

    #[test]
    fn fake_clock_makes_output_byte_stable() {
        let render = || {
            let tracer = sample_tracer();
            let mut out = Vec::new();
            tracer.write_jsonl(&mut out).unwrap();
            String::from_utf8(out).unwrap()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn span_macro_guards_a_scope() {
        let tracer = Tracer::fake_clock();
        let mut rec = tracer.recorder();
        {
            let mut g = span!(rec, "outer", kernel = "k");
            g.event("tick", &[]);
        }
        tracer.submit(rec);
        let traces = tracer.traces();
        assert_eq!(traces[0].root.name, "outer");
        assert_eq!(traces[0].root.events.len(), 1);
    }

    #[test]
    fn lanes_distinguish_threads() {
        let tracer = Tracer::fake_clock();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut rec = tracer.recorder();
                    rec.open("compile");
                    rec.close();
                    tracer.submit(rec);
                });
            }
        });
        let lanes: std::collections::HashSet<usize> =
            tracer.traces().iter().map(|t| t.lane).collect();
        assert_eq!(lanes.len(), 2, "each thread gets its own lane");
    }
}

//! The flight recorder: an always-on, bounded-memory ring of completed
//! request records for live daemon introspection and post-mortems.
//!
//! A server records one [`RequestRecord`] per finished request —
//! including sheds, deadline expiries, wire-level rejections and caught
//! panics — into a [`FlightRecorder`]. The ring holds the last
//! `capacity` records and evicts the oldest on overflow, so memory is
//! bounded no matter how long the daemon runs, and recording is one
//! short mutex hold (no allocation beyond the record itself, whose span
//! tree is bounded by the pass count).
//!
//! Three renderings serve the live endpoints:
//!
//! * [`render_chrome_trace`](FlightRecorder::render_chrome_trace) — the
//!   last N requests as a Perfetto-loadable Chrome trace (`GET /trace`):
//!   one `request <rid>` span per record on its worker's lane, with the
//!   compile's per-pass span tree nested inside and loose events
//!   (cache hits, salvages) as instants.
//! * [`render_requests_jsonl`](FlightRecorder::render_requests_jsonl) —
//!   the ring as one access-log JSON line per request
//!   (`GET /requests`), the same line format the daemon's on-disk
//!   access log uses, so a client-reported `rid` joins against either.
//! * [`render_stats_json`](FlightRecorder::render_stats_json) — the
//!   ring's own accounting (capacity, resident, recorded, evicted) for
//!   `GET /stats`.
//!
//! Timestamps come from the recorder's [`Clock`]; construct with
//! [`FlightRecorder::fake_clock`] for byte-stable golden tests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{json, render_chrome_doc, Clock, Event, Span, SpanRecorder, TraceRecord};

/// Longest string stored per text field of a record — request ids are
/// server-generated, but peer addresses, target/plan/kernel names and
/// outcome codes can be attacker-influenced, and the ring must stay
/// bounded-memory under hostile traffic.
const MAX_FIELD_BYTES: usize = 64;

/// One completed request, as the flight recorder remembers it.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestRecord {
    /// Server-generated request id (`r-xxxxxxxx`, hex sequence number),
    /// echoed in the wire response and the access log.
    pub rid: String,
    /// 1-based worker lane the request was served on (0 = unknown, e.g.
    /// a shed at the accept loop).
    pub lane: usize,
    /// Client address (`ip:port`), empty when unknown.
    pub peer: String,
    /// Outcome code: `ok`, `pong`, or one of the documented error codes
    /// (`overloaded`, `deadline`, `internal`, ...).
    pub code: String,
    /// Requested target name (empty for non-compile requests).
    pub target: String,
    /// Requested plan preset (empty for non-compile requests).
    pub plan: String,
    /// Compiled kernel name (empty unless the compile succeeded).
    pub kernel: String,
    /// Whether the compile was answered by the code cache.
    pub cache_hit: bool,
    /// Request start, microseconds on the recorder's clock.
    pub start_us: u64,
    /// Request end, microseconds on the recorder's clock.
    pub end_us: u64,
    /// Time the connection waited in the admission queue before a worker
    /// picked it up (attributed to the connection's first request).
    pub queue_us: u64,
    /// Time spent reading the request line off the socket.
    pub read_us: u64,
    /// Time spent inside the compile pipeline.
    pub compile_us: u64,
    /// Time spent rendering the response line.
    pub serialize_us: u64,
    /// Per-phase span trees recorded while handling the request (parse,
    /// lower, compile-with-pass-children). Empty for non-compile
    /// requests and failures before the pipeline.
    pub spans: Vec<Span>,
    /// Loose instant events recorded outside any span (cache hits and
    /// misses).
    pub events: Vec<Event>,
}

impl RequestRecord {
    /// A zeroed record carrying only the id — callers fill in what the
    /// request's path through the server actually produced.
    pub fn new(rid: String) -> Self {
        RequestRecord {
            rid,
            lane: 0,
            peer: String::new(),
            code: String::new(),
            target: String::new(),
            plan: String::new(),
            kernel: String::new(),
            cache_hit: false,
            start_us: 0,
            end_us: 0,
            queue_us: 0,
            read_us: 0,
            compile_us: 0,
            serialize_us: 0,
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Total wall time of the request in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Renders this record as one access-log JSON line (no trailing
    /// newline) — the shared format of `GET /requests` and the daemon's
    /// on-disk access log.
    pub fn render_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"rid\":");
        json::push_str_lit(&mut out, &self.rid);
        out.push_str(",\"lane\":");
        out.push_str(&self.lane.to_string());
        out.push_str(",\"peer\":");
        json::push_str_lit(&mut out, &self.peer);
        out.push_str(",\"code\":");
        json::push_str_lit(&mut out, &self.code);
        out.push_str(",\"target\":");
        json::push_str_lit(&mut out, &self.target);
        out.push_str(",\"plan\":");
        json::push_str_lit(&mut out, &self.plan);
        out.push_str(",\"kernel\":");
        json::push_str_lit(&mut out, &self.kernel);
        out.push_str(&format!(
            ",\"cache_hit\":{},\"start_us\":{},\"dur_us\":{},\"queue_us\":{},\"read_us\":{},\
             \"compile_us\":{},\"serialize_us\":{}}}",
            self.cache_hit,
            self.start_us,
            self.dur_us(),
            self.queue_us,
            self.read_us,
            self.compile_us,
            self.serialize_us,
        ));
        debug_assert!(json::validate(&out).is_ok());
        out
    }

    /// Clips every free-text field to [`MAX_FIELD_BYTES`] (on a char
    /// boundary) so one hostile request can never grow the ring.
    fn clipped(mut self) -> Self {
        for field in
            [&mut self.peer, &mut self.code, &mut self.target, &mut self.plan, &mut self.kernel]
        {
            if field.len() > MAX_FIELD_BYTES {
                let mut end = MAX_FIELD_BYTES;
                while !field.is_char_boundary(end) {
                    end -= 1;
                }
                field.truncate(end);
            }
        }
        self
    }

    /// The synthetic root span `/trace` renders for this record: the
    /// request envelope with the latency split as attributes and the
    /// recorded phase spans as children.
    fn as_span(&self) -> Span {
        Span {
            name: format!("request {}", self.rid),
            start_us: self.start_us,
            end_us: self.end_us.max(self.start_us),
            attrs: vec![
                ("rid".into(), self.rid.clone().into()),
                ("peer".into(), self.peer.clone().into()),
                ("code".into(), self.code.clone().into()),
                ("target".into(), self.target.clone().into()),
                ("plan".into(), self.plan.clone().into()),
                ("kernel".into(), self.kernel.clone().into()),
                ("cache_hit".into(), self.cache_hit.into()),
                ("queue_us".into(), self.queue_us.into()),
                ("read_us".into(), self.read_us.into()),
                ("compile_us".into(), self.compile_us.into()),
                ("serialize_us".into(), self.serialize_us.into()),
            ],
            events: self.events.clone(),
            children: self.spans.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct FlightInner {
    ring: VecDeque<RequestRecord>,
    recorded: u64,
    evicted: u64,
}

/// The bounded ring of completed requests. Thread-safe; every operation
/// is one short mutex hold.
#[derive(Debug)]
pub struct FlightRecorder {
    clock: Clock,
    capacity: usize,
    seq: AtomicU64,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests, stamping wall
    /// time.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, Clock::real())
    }

    /// A recorder on the deterministic fake clock (one microsecond per
    /// reading) for byte-stable golden tests.
    pub fn fake_clock(capacity: usize) -> Self {
        Self::with_clock(capacity, Clock::fake())
    }

    fn with_clock(capacity: usize, clock: Clock) -> Self {
        FlightRecorder {
            clock,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// The recorder's clock — share it with anything whose timestamps
    /// must line up with the recorded spans.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The current timestamp in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// A fresh enabled [`SpanRecorder`] on this recorder's clock, for
    /// capturing one request's phase spans.
    pub fn recorder(&self) -> SpanRecorder {
        SpanRecorder::enabled(self.clock.clone())
    }

    /// The next request id: `r-xxxxxxxx` with a monotonically increasing
    /// hex sequence, unique within the process.
    pub fn next_rid(&self) -> String {
        format!("r-{:08x}", self.seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one completed request, evicting the oldest record when
    /// the ring is full. Free-text fields are clipped to a fixed bound
    /// first.
    pub fn record(&self, record: RequestRecord) {
        let record = record.clipped();
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.recorded += 1;
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(record);
    }

    /// Ring capacity (records resident at most).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently resident in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total requests ever recorded (evicted ones included).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recorded
    }

    /// Records evicted to keep the ring within capacity.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).evicted
    }

    /// Snapshot of the resident records, oldest first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// The resident ring as a Perfetto-loadable Chrome trace document:
    /// one `request <rid>` span per record on its worker's lane, phase
    /// spans nested inside, loose events as instants.
    pub fn render_chrome_trace(&self) -> String {
        let records = self.snapshot();
        let lanes = records.iter().map(|r| r.lane).max().unwrap_or(0).max(1);
        let traces: Vec<TraceRecord> = records
            .iter()
            .map(|r| TraceRecord { lane: r.lane.max(1), root: r.as_span() })
            .collect();
        render_chrome_doc(lanes, &traces, &[])
    }

    /// The resident ring as access-log JSON lines, oldest first, one
    /// request per line.
    pub fn render_requests_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.render_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// The recorder's own accounting as one JSON object.
    pub fn render_stats_json(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        format!(
            "{{\"capacity\":{},\"resident\":{},\"recorded\":{},\"evicted\":{}}}",
            self.capacity,
            inner.ring.len(),
            inner.recorded,
            inner.evicted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rid: &str, code: &str) -> RequestRecord {
        let mut r = RequestRecord::new(rid.to_string());
        r.code = code.to_string();
        r
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let flight = FlightRecorder::fake_clock(3);
        for i in 0..5 {
            flight.record(record(&format!("r-{i:08x}"), "ok"));
        }
        let rids: Vec<String> = flight.snapshot().into_iter().map(|r| r.rid).collect();
        assert_eq!(rids, ["r-00000002", "r-00000003", "r-00000004"]);
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.recorded(), 5);
        assert_eq!(flight.evicted(), 2);
    }

    #[test]
    fn rids_are_unique_and_monotone() {
        let flight = FlightRecorder::fake_clock(8);
        let a = flight.next_rid();
        let b = flight.next_rid();
        assert_eq!(a, "r-00000001");
        assert_eq!(b, "r-00000002");
        assert_ne!(a, b);
    }

    #[test]
    fn hostile_fields_are_clipped() {
        let mut r = record("r-00000001", "ok");
        r.kernel = "k".repeat(10_000);
        r.peer = "é".repeat(1_000); // multi-byte: clip must stay on a boundary
        let flight = FlightRecorder::fake_clock(2);
        flight.record(r);
        let got = &flight.snapshot()[0];
        assert!(got.kernel.len() <= MAX_FIELD_BYTES);
        assert!(got.peer.len() <= MAX_FIELD_BYTES);
        assert!(got.peer.chars().all(|c| c == 'é'));
    }

    #[test]
    fn renderings_are_valid_and_cover_the_ring() {
        let flight = FlightRecorder::fake_clock(4);
        let mut ok = record("r-00000001", "ok");
        ok.lane = 2;
        ok.start_us = flight.now_us();
        let mut rec = flight.recorder();
        rec.open("compile");
        rec.open("select");
        rec.close();
        rec.close();
        let (spans, events) = rec.finish(None);
        ok.spans = spans;
        ok.events = events;
        ok.end_us = flight.now_us();
        flight.record(ok);
        flight.record(record("r-00000002", "overloaded"));

        let chrome = flight.render_chrome_trace();
        json::validate(&chrome).unwrap_or_else(|e| panic!("{e}:\n{chrome}"));
        assert!(chrome.contains("request r-00000001"));
        assert!(chrome.contains("\"select\""), "phase spans nest inside: {chrome}");
        assert!(chrome.contains("request r-00000002"));

        let jsonl = flight.render_requests_jsonl();
        json::validate_jsonl(&jsonl).unwrap_or_else(|e| panic!("{e}:\n{jsonl}"));
        assert_eq!(jsonl.lines().count(), 2);

        let stats = flight.render_stats_json();
        json::validate(&stats).unwrap_or_else(|e| panic!("{e}:\n{stats}"));
        assert!(stats.contains("\"resident\":2"));
    }
}

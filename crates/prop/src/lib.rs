//! A tiny deterministic property-testing harness.
//!
//! The build container has no network access to crates.io, so the test
//! suites cannot depend on `proptest`; this crate supplies the small
//! slice of it they actually need: a seedable PRNG with convenience
//! samplers ([`Rng`]) and a driver ([`run_cases`]) that executes a
//! property over many generated cases and, on failure, reports the case
//! number and seed so the exact input can be replayed.
//!
//! Determinism is a feature: every run of the suite exercises the same
//! inputs, so a red test is always reproducible. To replay one failing
//! case in isolation, construct `Rng::new(seed)` with the seed from the
//! panic message.

pub mod dfl;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A splitmix64 PRNG: tiny, fast, and with full 64-bit avalanche, so
/// consecutive seeds produce unrelated streams.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `lo..hi` (half-open, `lo < hi`).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform in `lo..hi` (half-open) for `u32`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.i64_in(lo as i64, hi as i64) as u32
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize(xs.len())]
    }

    /// A random string of length `0..max_len` over the byte set `alphabet`.
    pub fn string_from(&mut self, alphabet: &str, max_len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.usize(max_len + 1);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }

    /// A random (possibly non-ASCII) string of length `0..max_len`,
    /// drawn from the printable-ish BMP — used for parser fuzzing.
    pub fn wild_string(&mut self, max_len: usize) -> String {
        let len = self.usize(max_len + 1);
        (0..len)
            .map(|_| {
                let v = self.next_u64();
                match v % 4 {
                    0 => char::from(32 + (v >> 8) as u8 % 95), // printable ASCII
                    1 => char::from((v >> 8) as u8),           // any byte incl. control
                    _ => char::from_u32(((v >> 8) as u32) % 0xD7FF).unwrap_or('\u{FFFD}'),
                }
            })
            .collect()
    }
}

/// Runs `property` over `cases` generated inputs; each case gets its own
/// deterministically-derived [`Rng`]. Panics (failing the enclosing
/// `#[test]`) with the case index and seed if any case fails.
pub fn run_cases<F: FnMut(&mut Rng)>(cases: usize, mut property: F) {
    // A fixed base seed keeps the suite reproducible run-to-run; mixing
    // the case index through splitmix gives unrelated per-case streams.
    let base = 0x5EED_BA5E_D00D_F00Du64;
    for case in 0..cases {
        let seed = Rng::new(base ^ case as u64).next_u64();
        let mut rng = Rng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed at case {case}/{cases} (replay seed {seed:#018x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::new(7);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            let v = r.i64_in(-5, 7);
            assert!((-5..7).contains(&v));
            assert!(r.usize(3) < 3);
        }
    }

    #[test]
    fn failure_reports_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases(10, |rng| {
                let v = rng.i64_in(0, 100);
                assert!(v < 1000, "impossible");
                if v >= 0 {
                    panic!("always fails");
                }
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("replay seed"), "{msg}");
    }
}

//! Fuzz-input generation for the mini-DFL language.
//!
//! Two complementary sources of inputs:
//!
//! * [`gen_program`] — a *grammar-based* generator that emits well-formed
//!   DFL programs: declarations first, then assignments and bounded `for`
//!   loops whose array indexes provably stay in bounds. These programs
//!   are meant to survive the whole pipeline, so they drive differential
//!   compilation (O0 vs O2 vs salvaged plans must compute the same
//!   outputs on the simulator).
//! * [`mutate`] — a *token-level* mutator that takes any source text,
//!   splits it into rough tokens and randomly deletes, duplicates, swaps,
//!   replaces and inserts them. The result is usually ill-formed; the
//!   frontend must reject it with a structured error, never a panic.
//!
//! Both draw from this crate's deterministic [`Rng`], so every fuzz case
//! is replayable from its seed.

use crate::Rng;

/// Everything the statement generator may reference.
struct Scope {
    /// Readable scalar names (`in` + `var`).
    scalars: Vec<String>,
    /// Writable scalar names (`var` + `out`).
    sinks: Vec<String>,
    /// Arrays as `(name, len, writable)`.
    arrays: Vec<(String, i64, bool)>,
    /// Active loop counters as `(name, inclusive upper bound)`.
    counters: Vec<(String, i64)>,
}

/// Generates a well-formed DFL program: in-bounds array indexing, loop
/// nesting of at most two, expression depth of at most three, and only
/// operators every backend pass and the simulator agree on.
pub fn gen_program(rng: &mut Rng) -> String {
    let mut scope =
        Scope { scalars: Vec::new(), sinks: Vec::new(), arrays: Vec::new(), counters: Vec::new() };
    let mut decls = String::new();

    let n = 2 + rng.usize(5) as i64; // the `const N` used for lengths/bounds
    decls.push_str(&format!("  const N := {n};\n"));

    for i in 0..1 + rng.usize(2) {
        let name = format!("x{i}");
        decls.push_str(&format!("  in {name}: fix;\n"));
        scope.scalars.push(name);
    }
    for i in 0..rng.usize(3) {
        let name = format!("t{i}");
        decls.push_str(&format!("  var {name}: fix;\n"));
        scope.scalars.push(name.clone());
        scope.sinks.push(name);
    }
    for i in 0..1 + rng.usize(2) {
        let name = format!("y{i}");
        decls.push_str(&format!("  out {name}: fix;\n"));
        scope.sinks.push(name);
    }
    for i in 0..rng.usize(3) {
        let name = format!("a{i}");
        let (len, len_text) = if rng.usize(3) == 0 {
            (n, "N".to_string())
        } else {
            let l = 2 + rng.usize(6) as i64;
            (l, l.to_string())
        };
        let writable = rng.bool();
        let kind = if writable { "var" } else { "in" };
        decls.push_str(&format!("  {kind} {name}: fix[{len_text}];\n"));
        scope.arrays.push((name, len, writable));
    }

    let mut body = String::new();
    let top_stmts = 1 + rng.usize(4);
    gen_stmts(rng, &mut scope, &mut body, top_stmts, 0);

    format!("program fz;\n{decls}begin\n{body}end\n")
}

fn gen_stmts(rng: &mut Rng, scope: &mut Scope, out: &mut String, count: usize, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    for _ in 0..count {
        // a nested loop needs an array long enough to stream over
        let can_loop = depth < 2 && scope.arrays.iter().any(|(_, len, _)| *len >= 2);
        if can_loop && rng.usize(4) == 0 {
            let hi = {
                let max_len = scope.arrays.iter().map(|(_, l, _)| *l).max().unwrap_or(2);
                1 + rng.usize((max_len - 1).max(1) as usize) as i64
            };
            let counter = format!("i{}", scope.counters.len());
            out.push_str(&format!("{indent}for {counter} in 0..{hi} loop\n"));
            scope.counters.push((counter, hi));
            let inner = 1 + rng.usize(2);
            gen_stmts(rng, scope, out, inner, depth + 1);
            scope.counters.pop();
            out.push_str(&format!("{indent}end loop;\n"));
        } else {
            let dst = gen_sink(rng, scope);
            let expr = gen_expr(rng, scope, 3);
            out.push_str(&format!("{indent}{dst} := {expr};\n"));
        }
    }
}

/// A writable destination: a scalar sink or an in-bounds element of a
/// writable array.
fn gen_sink(rng: &mut Rng, scope: &Scope) -> String {
    let writable: Vec<&(String, i64, bool)> = scope.arrays.iter().filter(|(_, _, w)| *w).collect();
    if !writable.is_empty() && rng.usize(3) == 0 {
        let (name, len, _) = writable[rng.usize(writable.len())];
        let idx = gen_index(rng, scope, *len);
        return format!("{name}[{idx}]");
    }
    if scope.sinks.is_empty() {
        // degenerate scope: fall back to a scalar the prelude always has
        return "y0".to_string();
    }
    scope.sinks[rng.usize(scope.sinks.len())].clone()
}

/// An index expression guaranteed in `0..len`: a literal, a loop counter
/// whose bound fits, or `counter + c` with the slack accounted for.
fn gen_index(rng: &mut Rng, scope: &Scope, len: i64) -> String {
    let usable: Vec<&(String, i64)> = scope.counters.iter().filter(|(_, hi)| *hi < len).collect();
    if !usable.is_empty() && rng.bool() {
        let (name, hi) = usable[rng.usize(usable.len())];
        let slack = len - 1 - hi;
        if slack > 0 && rng.bool() {
            let c = 1 + rng.usize(slack as usize) as i64;
            return format!("{name} + {c}");
        }
        return name.clone();
    }
    rng.usize(len as usize).to_string()
}

fn gen_expr(rng: &mut Rng, scope: &Scope, depth: usize) -> String {
    if depth == 0 || rng.usize(3) == 0 {
        return gen_leaf(rng, scope);
    }
    match rng.usize(8) {
        // parenthesized so a negative-literal leaf cannot form `--`,
        // which the lexer would treat as a comment
        0 => format!("-({})", gen_leaf(rng, scope)),
        1 => format!("sat({})", gen_expr(rng, scope, depth - 1)),
        2 => format!(
            "sadd({}, {})",
            gen_expr(rng, scope, depth - 1),
            gen_expr(rng, scope, depth - 1)
        ),
        _ => {
            let op = *rng.pick(&["+", "-", "*"]);
            format!(
                "({} {} {})",
                gen_expr(rng, scope, depth - 1),
                op,
                gen_expr(rng, scope, depth - 1)
            )
        }
    }
}

fn gen_leaf(rng: &mut Rng, scope: &Scope) -> String {
    match rng.usize(4) {
        0 => rng.i64_in(-8, 9).to_string(),
        1 if !scope.arrays.is_empty() => {
            let (name, len, _) = &scope.arrays[rng.usize(scope.arrays.len())];
            let idx = gen_index(rng, scope, *len);
            format!("{name}[{idx}]")
        }
        2 if !scope.scalars.is_empty() && rng.usize(8) == 0 => {
            // an occasional delay taps one sample of history
            let name = &scope.scalars[rng.usize(scope.scalars.len())];
            format!("{name}@{}", 1 + rng.usize(2))
        }
        _ if !scope.scalars.is_empty() => scope.scalars[rng.usize(scope.scalars.len())].clone(),
        _ => "1".to_string(),
    }
}

/// Replacement/insertion material for [`mutate`], chosen to probe the
/// frontend's edges: keywords out of place, extreme literals, operators
/// that pair up into comments, unknown intrinsics.
const TOKEN_POOL: &[&str] = &[
    "program",
    "var",
    "in",
    "out",
    "const",
    "begin",
    "end",
    "for",
    "loop",
    "do",
    "fix",
    "int",
    "bank",
    ":=",
    ":",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "@",
    "+",
    "-",
    "*",
    "/",
    "&",
    "|",
    "^",
    "~",
    "<<",
    ">>",
    "..",
    "0",
    "1",
    "9223372036854775807",
    "4294967296",
    "0xffffffffffffffff",
    "1048577",
    "x0",
    "a0",
    "y0",
    "N",
    "sat",
    "sadd",
    "frob",
];

/// Token-level mutation: `rounds` random edits (delete, duplicate, swap,
/// replace, insert) over a rough tokenization of `source`. The output is
/// valid UTF-8 but rarely valid DFL — exactly what the frontend's error
/// paths need.
pub fn mutate(source: &str, rng: &mut Rng, rounds: usize) -> String {
    let mut tokens = rough_tokens(source);
    for _ in 0..rounds {
        if tokens.is_empty() {
            tokens.push(TOKEN_POOL[rng.usize(TOKEN_POOL.len())].to_string());
            continue;
        }
        let i = rng.usize(tokens.len());
        match rng.usize(5) {
            0 => {
                tokens.remove(i);
            }
            1 => {
                let t = tokens[i].clone();
                tokens.insert(i, t);
            }
            2 => {
                let j = rng.usize(tokens.len());
                tokens.swap(i, j);
            }
            3 => tokens[i] = TOKEN_POOL[rng.usize(TOKEN_POOL.len())].to_string(),
            _ => tokens.insert(i, TOKEN_POOL[rng.usize(TOKEN_POOL.len())].to_string()),
        }
    }
    tokens.join(" ")
}

/// Splits source into identifier/number runs and single punctuation
/// characters, dropping whitespace — coarse, but mutation does not need
/// lexical fidelity.
fn rough_tokens(source: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in source.chars() {
        if c.is_alphanumeric() || c == '_' {
            current.push(c);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = gen_program(&mut Rng::new(1));
        let b = gen_program(&mut Rng::new(1));
        assert_eq!(a, b);
        assert!(a.starts_with("program fz;"));
        assert!(a.contains("begin"));
    }

    #[test]
    fn generated_programs_vary_with_the_seed() {
        let a = gen_program(&mut Rng::new(1));
        let b = gen_program(&mut Rng::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn mutate_is_deterministic_and_total() {
        let base = gen_program(&mut Rng::new(3));
        let a = mutate(&base, &mut Rng::new(4), 6);
        let b = mutate(&base, &mut Rng::new(4), 6);
        assert_eq!(a, b);
        // mutation of an empty string still produces something
        assert!(!mutate("", &mut Rng::new(5), 3).is_empty());
    }

    #[test]
    fn rough_tokens_split_words_and_punctuation() {
        assert_eq!(rough_tokens("y := x1 + 2;"), vec!["y", ":", "=", "x1", "+", "2", ";"]);
    }
}

//! Addressing-mode assignment: rewrite symbolic memory operands into
//! direct or AGU-indirect accesses, inserting the address-register
//! bookkeeping instructions.
//!
//! Strategy:
//!
//! * **loop-variant accesses** (`a[i+d]`) become *streams*: each distinct
//!   `(base, displacement)` pair in a loop gets a dedicated address
//!   register, loaded once in the loop preheader and advanced once per
//!   iteration — by a free post-increment on the stream's last access when
//!   the AGU allows it, otherwise by an explicit `ArAdd` before the back
//!   edge;
//! * **loop-invariant accesses** use the one-word direct mode when the
//!   target has one ([`record_isa::target::MemoryDesc::has_direct`]);
//! * on targets **without direct addressing** (56k-style), scalar accesses
//!   are chained through one reserved pointer register whose free
//!   post-modify follows the access sequence — the machinery whose cost
//!   the [`offset`](crate::offset) pass minimizes by reordering storage.

use std::collections::HashMap;
use std::fmt;

use record_ir::Symbol;
use record_isa::target::AguDesc;
use record_isa::{AddrMode, Code, DataLayout, Insn, InsnKind, Loc, MemLoc, TargetDesc};

/// A structured address-assignment failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressError {
    /// The target has neither a direct addressing mode nor an AGU.
    NoAddressingMechanism {
        /// The target name.
        target: String,
    },
    /// A `LoopEnd` with no open `LoopStart` reached the address pass.
    UnmatchedLoopEnd,
    /// A `LoopStart` never closed before the end of the program.
    UnclosedLoopStart,
    /// A referenced symbol is absent from the data layout.
    Unplaced {
        /// The unplaced symbol.
        sym: Symbol,
    },
    /// A loop-variant operand appeared outside any loop.
    StrayLoopVariant {
        /// Rendering of the offending operand.
        operand: String,
    },
    /// No address register is free for the scalar pointer chain.
    NoScalarRegister,
    /// Loop-variant accesses exist but the target has no AGU.
    NoAgu {
        /// The target name.
        target: String,
    },
    /// Streams outnumber address registers and no spare is left.
    OutOfAddressRegisters {
        /// The target name.
        target: String,
    },
    /// One instruction reads two spilled streams at once.
    TwoSpilledStreams {
        /// The instruction text.
        insn: String,
    },
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressError::NoAddressingMechanism { target } => {
                write!(f, "target {target} has neither direct addressing nor an AGU")
            }
            AddressError::UnmatchedLoopEnd => f.write_str("unmatched LoopEnd"),
            AddressError::UnclosedLoopStart => f.write_str("unclosed LoopStart"),
            AddressError::Unplaced { sym } => {
                write!(f, "symbol `{sym}` not placed in data layout")
            }
            AddressError::StrayLoopVariant { operand } => {
                write!(
                    f,
                    "loop-variant operand {operand} outside any loop or without a stream register"
                )
            }
            AddressError::NoScalarRegister => {
                f.write_str("no address register available for scalars")
            }
            AddressError::NoAgu { target } => {
                write!(f, "loop-variant accesses on target {target} without AGU")
            }
            AddressError::OutOfAddressRegisters { target } => {
                write!(f, "out of address registers: no register left for loop streams on {target}")
            }
            AddressError::TwoSpilledStreams { insn } => {
                write!(
                    f,
                    "instruction `{insn}` reads two spilled streams; out of address registers"
                )
            }
        }
    }
}

impl std::error::Error for AddressError {}

/// Counters describing what address assignment did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddressStats {
    /// Address-register load instructions inserted.
    pub ar_loads: u32,
    /// Explicit address-register adjust instructions inserted.
    pub ar_adds: u32,
    /// Operands resolved to direct addressing.
    pub direct: u32,
    /// Operands resolved to register-indirect addressing.
    pub indirect: u32,
}

/// Assigns addressing modes to every memory operand of `code` in place.
///
/// Expects `code.layout` to already place every referenced symbol (see
/// [`crate::layout`]); operand banks are refreshed from the layout.
///
/// # Errors
///
/// Returns an error when a symbol is unplaced, when loop-variant accesses
/// exist but the target has no AGU (or runs out of address registers), or
/// when a target without direct addressing lacks an AGU.
pub fn assign_addresses(
    code: &mut Code,
    target: &TargetDesc,
) -> Result<AddressStats, AddressError> {
    let mut stats = AddressStats::default();
    let layout = code.layout.clone();
    let insns = std::mem::take(&mut code.insns);
    let nodes = parse_structure(insns)?;

    let mut ctx = Ctx {
        target,
        layout: &layout,
        agu: target.agu.as_ref(),
        stats: &mut stats,
        next_stream_ar: 0,
        // the scalar-chain pointer is only needed when there is no
        // direct addressing mode; reserving it otherwise would waste a
        // stream register
        scalar_ar: if target.memory.has_direct {
            None
        } else {
            target.agu.as_ref().map(|a| a.n_ars.saturating_sub(1))
        },
        has_direct: target.memory.has_direct,
        next_cell: 0,
        new_cells: Vec::new(),
    };
    if !ctx.has_direct && ctx.agu.is_none() {
        return Err(AddressError::NoAddressingMechanism { target: target.name.to_string() });
    }

    let mut out = Vec::new();
    let exit = ctx.process_seq(nodes, &mut out, None)?;
    let _ = exit;
    let new_cells = std::mem::take(&mut ctx.new_cells);
    drop(ctx);
    code.insns = out;
    for cell in new_cells {
        code.layout.append(cell, 1, record_ir::Bank::X);
    }
    Ok(stats)
}

/// Structured view of the flat instruction list.
#[allow(clippy::large_enum_variant)] // Plain is the overwhelmingly common case
enum Node {
    Plain(Insn),
    Loop { start: Insn, body: Vec<Node>, end: Insn },
}

fn parse_structure(insns: Vec<Insn>) -> Result<Vec<Node>, AddressError> {
    let mut stack: Vec<(Insn, Vec<Node>)> = Vec::new();
    let mut cur: Vec<Node> = Vec::new();
    for insn in insns {
        match &insn.kind {
            InsnKind::LoopStart { .. } => {
                stack.push((insn, std::mem::take(&mut cur)));
            }
            InsnKind::LoopEnd => {
                let (start, outer) = stack.pop().ok_or(AddressError::UnmatchedLoopEnd)?;
                let body = std::mem::replace(&mut cur, outer);
                cur.push(Node::Loop { start, body, end: insn });
            }
            _ => cur.push(Node::Plain(insn)),
        }
    }
    if !stack.is_empty() {
        return Err(AddressError::UnclosedLoopStart);
    }
    Ok(cur)
}

struct Ctx<'a> {
    target: &'a TargetDesc,
    layout: &'a DataLayout,
    agu: Option<&'a AguDesc>,
    stats: &'a mut AddressStats,
    /// Next stream AR to hand out (stream ARs grow from 0; the scalar
    /// pointer, if any, is the highest-numbered AR).
    next_stream_ar: u16,
    scalar_ar: Option<u16>,
    has_direct: bool,
    /// Counter for pointer spill cells.
    next_cell: u32,
    /// Spill cells created; appended to the layout afterwards.
    new_cells: Vec<Symbol>,
}

/// Position of the scalar pointer register, threaded through the walk.
type ScalarPos = Option<i64>;

impl<'a> Ctx<'a> {
    fn addr_of(&self, sym: &Symbol, disp: i64) -> Result<(record_ir::Bank, u16), AddressError> {
        self.layout.addr_of(sym, disp).ok_or_else(|| AddressError::Unplaced { sym: sym.clone() })
    }

    /// Processes a sequence of nodes, appending rewritten instructions to
    /// `out`. `pos` tracks the scalar pointer position (targets without
    /// direct addressing). Returns the exit position.
    fn process_seq(
        &mut self,
        nodes: Vec<Node>,
        out: &mut Vec<Insn>,
        mut pos: ScalarPos,
    ) -> Result<ScalarPos, AddressError> {
        // Pre-scan: the scalar accesses of this sequence in order, so each
        // access can set its post-modify toward the next one.
        let mut idx = 0usize;
        let accesses = scalar_access_addrs(&nodes, self)?;
        for node in nodes {
            match node {
                Node::Plain(mut insn) => {
                    pos = self.rewrite_insn(&mut insn, &accesses, &mut idx, pos, out)?;
                    out.push(insn);
                }
                Node::Loop { start, body, end } => {
                    pos = self.process_loop(start, body, end, out, pos)?;
                }
            }
        }
        Ok(pos)
    }

    /// Rewrites one instruction's memory operands. Scalar (loop-invariant)
    /// operands use direct mode or the scalar-pointer chain; returns the
    /// updated pointer position. `ar_of_stream` assignments for loop
    /// streams were already applied by the caller via `stream_mode`.
    fn rewrite_insn(
        &mut self,
        insn: &mut Insn,
        accesses: &[i64],
        idx: &mut usize,
        mut pos: ScalarPos,
        out: &mut Vec<Insn>,
    ) -> Result<ScalarPos, AddressError> {
        let mut mems = insn_mem_operands(insn);
        for m in mems.iter_mut() {
            if m.mode != AddrMode::Unresolved {
                continue; // already assigned (stream operand)
            }
            if m.index.is_some() {
                return Err(AddressError::StrayLoopVariant { operand: m.to_string() });
            }
            let (bank, addr) = self.addr_of(&m.base, m.disp)?;
            m.bank = bank;
            if self.has_direct {
                m.mode = AddrMode::Direct(addr);
                self.stats.direct += 1;
                continue;
            }
            // scalar-pointer chain
            let ar = self.scalar_ar.ok_or(AddressError::NoScalarRegister)?;
            let agu = self.agu.expect("checked: !has_direct implies AGU");
            if pos != Some(addr as i64) {
                out.push(ar_load(self.target, ar, &m.base, m.disp));
                self.stats.ar_loads += 1;
            }
            // post-modify toward the next scalar access if within range
            let next = accesses.get(*idx + 1).copied();
            let post = match next {
                Some(n) if (n - addr as i64).abs() <= agu.post_range as i64 => {
                    (n - addr as i64) as i8
                }
                _ => 0,
            };
            m.mode = AddrMode::Indirect { ar, post };
            self.stats.indirect += 1;
            pos = Some(addr as i64 + post as i64);
            *idx += 1;
        }
        Ok(pos)
    }

    fn process_loop(
        &mut self,
        start: Insn,
        body: Vec<Node>,
        end: Insn,
        out: &mut Vec<Insn>,
        pos: ScalarPos,
    ) -> Result<ScalarPos, AddressError> {
        let var = match &start.kind {
            InsnKind::LoopStart { var, .. } => var.clone(),
            _ => unreachable!("loop node starts with LoopStart"),
        };

        // 1. discover this loop's streams
        let mut streams: Vec<(Symbol, i64, bool)> = Vec::new();
        collect_streams(&body, &var, &mut streams);
        let agu = if streams.is_empty() {
            self.agu
        } else {
            Some(
                self.agu
                    .ok_or_else(|| AddressError::NoAgu { target: self.target.name.to_string() })?,
            )
        };

        // 2. allocate + preload a register per stream; when streams
        // outnumber the available registers, the excess streams keep their
        // pointers in memory cells and share one spare register (the
        // LAR/SAR spill idiom of real accumulator-machine compilers)
        let first_stream_ar = self.next_stream_ar;
        let mut stream_ars: HashMap<(Symbol, i64, bool), u16> = HashMap::new();
        let ar_limit = self.scalar_ar.unwrap_or_else(|| self.agu.map(|a| a.n_ars).unwrap_or(0));
        let capacity = ar_limit.saturating_sub(first_stream_ar) as usize;
        let (n_dedicated, spare) = if streams.len() <= capacity {
            (streams.len(), None)
        } else {
            if capacity == 0 {
                return Err(AddressError::OutOfAddressRegisters {
                    target: self.target.name.to_string(),
                });
            }
            (capacity - 1, Some(first_stream_ar + capacity as u16 - 1))
        };
        let mut spilled: HashMap<(Symbol, i64, bool), Symbol> = HashMap::new();
        for (base, disp, down) in &streams[..n_dedicated] {
            let ar = self.next_stream_ar;
            self.next_stream_ar += 1;
            stream_ars.insert((base.clone(), *disp, *down), ar);
            out.push(ar_load(self.target, ar, base, *disp));
            self.stats.ar_loads += 1;
        }
        if spare.is_some() {
            self.next_stream_ar += 1; // reserve the spare
        }
        for (base, disp, down) in &streams[n_dedicated..] {
            let cell = Symbol::new(format!("$ptr{}", self.next_cell));
            self.next_cell += 1;
            self.new_cells.push(cell.clone());
            spilled.insert((base.clone(), *disp, *down), cell.clone());
            out.push(ptr_init(self.target, &cell, base, *disp));
            self.stats.ar_loads += 1;
        }

        // 3. rewrite stream operands inside the body (any depth); mark the
        // last top-level access of each stream for the free post-increment
        let mut body = body;
        let post_range = agu.map(|a| a.post_range).unwrap_or(0);
        let mut last_access: HashMap<u16, (usize, usize, bool)> = HashMap::new();
        rewrite_streams(&mut body, &var, &stream_ars, self.layout, &mut last_access, self.stats)?;
        let mut advanced: Vec<u16> = Vec::new();
        if post_range >= 1 {
            for (ar, (node_ix, mem_ix, down)) in &last_access {
                if let Node::Plain(insn) = &mut body[*node_ix] {
                    let mut mems = insn_mem_operands(insn);
                    if let AddrMode::Indirect { post, .. } = &mut mems[*mem_ix].mode {
                        *post = if *down { -1 } else { 1 };
                        advanced.push(*ar);
                    }
                }
            }
        }

        // 3b. spilled streams: reload the spare register from the pointer
        // cell before every access (the operand itself stays post-free;
        // the advance happens once per iteration below)
        if let Some(spare_ar) = spare {
            body = rewrite_spilled(body, &var, &spilled, spare_ar, self.layout, self.stats)?;
        }

        // 4. recurse into the body for scalars and nested loops. The
        // scalar pointer must re-enter each iteration at the same
        // position: we pin it by reloading at loop entry if the body uses
        // it at all.
        let mut body_out: Vec<Insn> = Vec::new();
        let body_scalars = scalar_access_addrs(&body, self)?;
        let entry_pos = if self.has_direct || body_scalars.is_empty() {
            pos
        } else {
            // force a deterministic entry state: unknown, so the first
            // access inside reloads
            None
        };
        let exit_pos = self.process_seq(body, &mut body_out, entry_pos)?;

        // 5. advance streams that did not get a free post-increment
        out.push(start);
        out.extend(body_out);
        let mut pending: Vec<(u16, bool)> = stream_ars
            .iter()
            .filter(|(_, ar)| !advanced.contains(*ar))
            .map(|((_, _, down), ar)| (*ar, *down))
            .collect();
        pending.sort_unstable();
        for (ar, down) in pending {
            out.push(ar_add(self.target, ar, if down { -1 } else { 1 }));
            self.stats.ar_adds += 1;
        }
        // 5b. advance spilled stream pointers: load, adjust, store back
        if let Some(spare_ar) = spare {
            let mut cells: Vec<(&(Symbol, i64, bool), &Symbol)> = spilled.iter().collect();
            cells.sort_by(|a, b| a.1.cmp(b.1));
            for ((_, _, down), cell) in cells {
                out.push(ar_load_mem(spare_ar, cell));
                out.push(ar_add(self.target, spare_ar, if *down { -1 } else { 1 }));
                out.push(ar_store(spare_ar, cell));
                self.stats.ar_adds += 1;
            }
        }
        out.push(end);

        // release stream registers
        self.next_stream_ar = first_stream_ar;

        // after the loop the scalar pointer position is whatever the last
        // iteration left. `exit_pos` already threads through nested loops
        // (process_seq consults process_loop recursively), so it is the
        // honest answer even when this body has no *top-level* scalar
        // accesses: a nested loop may still have moved the pointer, and
        // reporting the pre-loop position there plans the following
        // post-modify walk from a stale address (a silent cross-variable
        // clobber found by the cube fuzzer).
        Ok(exit_pos)
    }
}

fn ar_load(target: &TargetDesc, ar: u16, base: &Symbol, disp: i64) -> Insn {
    let cost = target.agu.as_ref().map(|a| a.ar_load_cost).unwrap_or(record_isa::Cost::new(2, 2));
    let text = if disp == 0 {
        format!("LRLK AR{ar},#{base}")
    } else {
        format!("LRLK AR{ar},#{base}+{disp}")
    };
    Insn::ctrl(InsnKind::ArLoad { ar, base: base.clone(), disp }, text, cost.words, cost.cycles)
}

fn ar_add(target: &TargetDesc, ar: u16, delta: i64) -> Insn {
    let cost = target.agu.as_ref().map(|a| a.ar_add_cost).unwrap_or(record_isa::Cost::new(1, 1));
    Insn::ctrl(
        InsnKind::ArAdd { ar, delta },
        format!("ADRK AR{ar},#{delta}"),
        cost.words,
        cost.cycles,
    )
}

fn ar_load_mem(ar: u16, cell: &Symbol) -> Insn {
    Insn::ctrl(InsnKind::ArLoadMem { ar, cell: cell.clone() }, format!("LAR AR{ar},{cell}"), 1, 1)
}

fn ar_store(ar: u16, cell: &Symbol) -> Insn {
    Insn::ctrl(InsnKind::ArStore { ar, cell: cell.clone() }, format!("SAR AR{ar},{cell}"), 1, 1)
}

fn ptr_init(target: &TargetDesc, cell: &Symbol, base: &Symbol, disp: i64) -> Insn {
    let cost = target
        .agu
        .as_ref()
        .map(|a| a.ar_load_cost.add(record_isa::Cost::new(1, 1)))
        .unwrap_or(record_isa::Cost::new(3, 3));
    Insn::ctrl(
        InsnKind::PtrInit { cell: cell.clone(), base: base.clone(), disp },
        format!("LALK #{base}+{disp}; SACL {cell}"),
        cost.words,
        cost.cycles,
    )
}

/// Rewrites spilled-stream operands: a reload of the spare register from
/// the pointer cell is inserted before each containing instruction, and
/// the operand becomes plain indirect through the spare.
fn rewrite_spilled(
    nodes: Vec<Node>,
    var: &Symbol,
    spilled: &HashMap<(Symbol, i64, bool), Symbol>,
    spare: u16,
    layout: &DataLayout,
    stats: &mut AddressStats,
) -> Result<Vec<Node>, AddressError> {
    let mut out = Vec::with_capacity(nodes.len());
    for node in nodes {
        match node {
            Node::Plain(mut insn) => {
                let mut cell_needed: Option<Symbol> = None;
                for m in insn_mem_operands(&mut insn) {
                    if m.index.as_ref() != Some(var) {
                        continue;
                    }
                    let key = (m.base.clone(), m.disp, m.down);
                    let Some(cell) = spilled.get(&key) else { continue };
                    if let Some(prev) = &cell_needed {
                        if prev != cell {
                            return Err(AddressError::TwoSpilledStreams {
                                insn: insn.text.clone(),
                            });
                        }
                    }
                    let (bank, _) = layout
                        .addr_of(&m.base, m.disp)
                        .ok_or_else(|| AddressError::Unplaced { sym: m.base.clone() })?;
                    m.bank = bank;
                    m.mode = AddrMode::Indirect { ar: spare, post: 0 };
                    stats.indirect += 1;
                    cell_needed = Some(cell.clone());
                }
                if let Some(cell) = cell_needed {
                    out.push(Node::Plain(ar_load_mem(spare, &cell)));
                }
                out.push(Node::Plain(insn));
            }
            Node::Loop { start, body, end } => {
                let body = rewrite_spilled(body, var, spilled, spare, layout, stats)?;
                out.push(Node::Loop { start, body, end });
            }
        }
    }
    Ok(out)
}

/// Mutable references to every memory operand of an instruction
/// (reads in evaluation order, then the destination), including parallel
/// sub-instructions.
fn insn_mem_operands(insn: &mut Insn) -> Vec<&mut MemLoc> {
    let mut out = Vec::new();
    collect_mems(insn, &mut out);
    out
}

fn collect_mems<'i>(insn: &'i mut Insn, out: &mut Vec<&'i mut MemLoc>) {
    if let InsnKind::Compute { dst, expr } = &mut insn.kind {
        for l in expr.reads_mut() {
            if let Loc::Mem(m) = l {
                out.push(m);
            }
        }
        if let Loc::Mem(m) = dst {
            out.push(m);
        }
    }
    for p in &mut insn.parallel {
        collect_mems(p, out);
    }
}

/// The addresses of the scalar (unresolved, loop-invariant) accesses of a
/// node sequence, in execution order, *stopping at loop boundaries* (loop
/// bodies handle their own chains).
fn scalar_access_addrs(nodes: &[Node], ctx: &Ctx<'_>) -> Result<Vec<i64>, AddressError> {
    let mut out = Vec::new();
    for node in nodes {
        if let Node::Plain(insn) = node {
            let mut insn = insn.clone();
            for m in insn_mem_operands(&mut insn) {
                if m.mode == AddrMode::Unresolved && m.index.is_none() {
                    let (_, addr) = ctx.addr_of(&m.base, m.disp)?;
                    out.push(addr as i64);
                }
            }
        }
    }
    Ok(out)
}

fn collect_streams(nodes: &[Node], var: &Symbol, streams: &mut Vec<(Symbol, i64, bool)>) {
    for node in nodes {
        match node {
            Node::Plain(insn) => {
                let mut insn = insn.clone();
                for m in insn_mem_operands(&mut insn) {
                    if m.index.as_ref() == Some(var) {
                        let key = (m.base.clone(), m.disp, m.down);
                        if !streams.contains(&key) {
                            streams.push(key);
                        }
                    }
                }
            }
            Node::Loop { body, .. } => collect_streams(body, var, streams),
        }
    }
}

/// Rewrites stream operands to indirect mode (post 0 for now) and records
/// the position — `(top-level node index, operand index)` — of the last
/// top-level operand of each stream so the caller can flip its
/// post-increment.
fn rewrite_streams(
    nodes: &mut [Node],
    var: &Symbol,
    stream_ars: &HashMap<(Symbol, i64, bool), u16>,
    layout: &DataLayout,
    last_access: &mut HashMap<u16, (usize, usize, bool)>,
    stats: &mut AddressStats,
) -> Result<(), AddressError> {
    for (node_ix, node) in nodes.iter_mut().enumerate() {
        match node {
            Node::Plain(insn) => {
                for (mem_ix, m) in insn_mem_operands(insn).into_iter().enumerate() {
                    if m.index.as_ref() == Some(var) {
                        // spilled streams are handled by rewrite_spilled
                        let Some(ar) = stream_ars.get(&(m.base.clone(), m.disp, m.down)) else {
                            continue;
                        };
                        let ar = *ar;
                        let (bank, _) = layout
                            .addr_of(&m.base, m.disp)
                            .ok_or_else(|| AddressError::Unplaced { sym: m.base.clone() })?;
                        m.bank = bank;
                        m.mode = AddrMode::Indirect { ar, post: 0 };
                        stats.indirect += 1;
                        last_access.insert(ar, (node_ix, mem_ix, m.down));
                    }
                }
            }
            Node::Loop { body, .. } => {
                // nested accesses of the outer stream advance only per
                // outer iteration: rewrite but never mark as last
                // (the ArAdd fallback advances them)
                let mut dummy = HashMap::new();
                rewrite_streams(body, var, stream_ars, layout, &mut dummy, stats)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_ir::Bank;
    use record_isa::SemExpr;

    fn mem(name: &str) -> MemLoc {
        MemLoc::scalar(name)
    }

    fn stream(base: &str, var: &str, disp: i64) -> MemLoc {
        MemLoc {
            base: Symbol::new(base),
            disp,
            index: Some(Symbol::new(var)),
            down: false,
            bank: Bank::X,
            mode: AddrMode::Unresolved,
        }
    }

    fn mov(dst: MemLoc, src: MemLoc) -> Insn {
        Insn::mov(Loc::Mem(dst), Loc::Mem(src), "MOV", 1, 1)
    }

    fn layout_for(code: &mut Code, syms: &[(&str, u32)]) {
        let mut addr = 0u16;
        for (s, len) in syms {
            code.layout.place(Symbol::new(*s), addr, *len, Bank::X);
            addr += *len as u16;
        }
    }

    #[test]
    fn direct_mode_on_c25_scalars() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(mov(mem("y"), mem("x")));
        layout_for(&mut code, &[("x", 1), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.direct, 2);
        assert_eq!(stats.ar_loads, 0);
        match &code.insns[0].kind {
            InsnKind::Compute { dst, expr } => {
                assert_eq!(dst.as_mem().unwrap().mode, AddrMode::Direct(1));
                match &expr {
                    SemExpr::Loc(Loc::Mem(m)) => assert_eq!(m.mode, AddrMode::Direct(0)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loop_streams_get_dedicated_ars_with_post_increment() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
            "LOOP 4",
            2,
            2,
        ));
        code.insns.push(mov(mem("y"), stream("a", "i", 0)));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        layout_for(&mut code, &[("a", 4), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 1, "{:#?}", code.insns);
        assert_eq!(stats.ar_adds, 0, "free post-increment covers the advance");
        // preheader load precedes LoopStart
        assert!(matches!(code.insns[0].kind, InsnKind::ArLoad { ar: 0, .. }));
        // the access is indirect with post +1
        let m = match &code.insns[2].kind {
            InsnKind::Compute { expr: SemExpr::Loc(Loc::Mem(m)), .. } => m,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(m.mode, AddrMode::Indirect { ar: 0, post: 1 });
    }

    #[test]
    fn two_streams_two_registers() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
            "LOOP 4",
            2,
            2,
        ));
        code.insns.push(mov(stream("b", "i", 0), stream("a", "i", 0)));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        layout_for(&mut code, &[("a", 4), ("b", 4)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 2);
        assert_eq!(stats.indirect, 2);
    }

    #[test]
    fn distinct_displacements_are_distinct_streams() {
        // a[i] and a[i+1] advance independently
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 3 },
            "LOOP 3",
            2,
            2,
        ));
        code.insns.push(mov(mem("y"), stream("a", "i", 1)));
        code.insns.push(mov(stream("a", "i", 0), mem("y")));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        layout_for(&mut code, &[("a", 4), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 2);
    }

    #[test]
    fn no_direct_mode_chains_scalars_through_pointer() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = Code::default();
        // x and y adjacent: second access reachable by post-increment
        code.insns.push(mov(mem("y"), mem("x")));
        layout_for(&mut code, &[("x", 1), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.direct, 0);
        assert_eq!(stats.indirect, 2);
        // one pointer load for x; y reached by the post-modify
        assert_eq!(stats.ar_loads, 1, "{:#?}", code.insns);
    }

    #[test]
    fn no_direct_mode_distant_scalars_need_reloads() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = Code::default();
        code.insns.push(mov(mem("y"), mem("x")));
        layout_for(&mut code, &[("x", 1), ("gap", 10), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 2, "distance 11 defeats the post-modify");
    }

    #[test]
    fn unplaced_symbol_is_an_error() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(mov(mem("y"), mem("x")));
        let err = assign_addresses(&mut code, &t).unwrap_err();
        assert!(matches!(err, AddressError::Unplaced { ref sym } if sym.as_str() == "x"), "{err}");
    }

    #[test]
    fn loop_variant_access_outside_loop_is_an_error() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(mov(mem("y"), stream("a", "i", 0)));
        layout_for(&mut code, &[("a", 4), ("y", 1)]);
        let err = assign_addresses(&mut code, &t).unwrap_err();
        assert!(matches!(err, AddressError::StrayLoopVariant { .. }), "{err}");
    }

    #[test]
    fn excess_streams_spill_their_pointers_to_memory() {
        // 10 distinct streams on an 8-AR machine: 7 dedicated + 1 spare
        // shared by 3 spilled streams whose pointers live in $ptr cells
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
            "LOOP 4",
            2,
            2,
        ));
        for k in 0..10 {
            code.insns.push(mov(mem("y"), stream(&format!("a{k}"), "i", 0)));
        }
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        let mut addr = 0u16;
        code.layout.place(Symbol::new("y"), addr, 1, Bank::X);
        addr += 1;
        for k in 0..10 {
            code.layout.place(Symbol::new(format!("a{k}")), addr, 4, Bank::X);
            addr += 4;
        }
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 10, "7 LRLK + 3 PtrInit");
        // spill machinery present
        assert!(code.insns.iter().any(|i| matches!(i.kind, InsnKind::PtrInit { .. })));
        assert!(code.insns.iter().any(|i| matches!(i.kind, InsnKind::ArLoadMem { .. })));
        assert!(code.insns.iter().any(|i| matches!(i.kind, InsnKind::ArStore { .. })));
        // the cells were added to the layout
        assert!(code.layout.entry(&Symbol::new("$ptr0")).is_some());
        assert!(code.layout.entry(&Symbol::new("$ptr2")).is_some());
    }

    #[test]
    fn stream_advances_are_emitted_in_register_order() {
        // simple_risc has no free post-increment, so every stream gets an
        // explicit ArAdd at the loop tail; those must come out sorted by
        // register, not in HashMap iteration order (regression: the batch
        // driver exposed run-to-run ADRK reordering)
        let t = record_isa::targets::simple_risc::target(8);
        for _ in 0..4 {
            let mut code = Code::default();
            code.insns.push(Insn::ctrl(
                InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
                "LOOP 4",
                2,
                2,
            ));
            for (dst, src) in [("c", "a"), ("d", "b")] {
                code.insns.push(mov(stream(dst, "i", 0), stream(src, "i", 0)));
            }
            code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
            layout_for(&mut code, &[("a", 4), ("b", 4), ("c", 4), ("d", 4)]);
            assign_addresses(&mut code, &t).unwrap();
            let adds: Vec<u16> = code
                .insns
                .iter()
                .filter_map(|i| match i.kind {
                    InsnKind::ArAdd { ar, .. } => Some(ar),
                    _ => None,
                })
                .collect();
            assert!(!adds.is_empty(), "expected explicit stream advances");
            assert!(adds.windows(2).all(|w| w[0] < w[1]), "unsorted: {adds:?}");
        }
    }

    #[test]
    fn nested_loop_scalar_moves_are_visible_after_the_loop() {
        // Regression (found by the cube fuzzer): when every scalar access
        // of a loop sits in a *nested* loop, the outer loop used to report
        // the scalar pointer unchanged. The access after the nest then
        // skipped its reload and went through a pointer the nest had
        // moved — a silent read/write of the wrong variable.
        let t = record_isa::targets::dsp56k::target();
        let mut code = Code::default();
        // pre-loop access chain leaves the pointer at x (addr 1)
        code.insns.push(mov(mem("x"), mem("q")));
        for var in ["i0", "i1"] {
            code.insns.push(Insn::ctrl(
                InsnKind::LoopStart { var: Symbol::new(var), count: 3 },
                "LOOP 3",
                2,
                2,
            ));
        }
        // the nest's only scalar access moves the pointer to y (addr 2)
        code.insns.push(mov(mem("y"), mem("y")));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        // tail access to x must reload: the pointer no longer points there
        code.insns.push(mov(mem("z"), mem("x")));
        layout_for(&mut code, &[("q", 1), ("x", 1), ("y", 1), ("z", 1)]);
        assign_addresses(&mut code, &t).unwrap();
        let tail_end = code.insns.len() - 1;
        let reloads_x_after_nest = code.insns[..tail_end]
            .iter()
            .rev()
            .take_while(|i| !matches!(i.kind, InsnKind::LoopEnd))
            .any(|i| matches!(&i.kind, InsnKind::ArLoad { base, .. } if base.as_str() == "x"));
        assert!(reloads_x_after_nest, "stale pointer after the nest: {:#?}", code.insns);
    }

    #[test]
    fn nested_loops_release_registers() {
        let t = record_isa::targets::tic25::target();
        let mut code = Code::default();
        for outer in 0..2 {
            code.insns.push(Insn::ctrl(
                InsnKind::LoopStart { var: Symbol::new(format!("i{outer}")), count: 2 },
                "LOOP",
                2,
                2,
            ));
            code.insns.push(mov(mem("y"), stream("a", &format!("i{outer}"), 0)));
            code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
        }
        layout_for(&mut code, &[("a", 4), ("y", 1)]);
        let stats = assign_addresses(&mut code, &t).unwrap();
        assert_eq!(stats.ar_loads, 2);
        // both loops use AR0 (released between them)
        let loads: Vec<u16> = code
            .insns
            .iter()
            .filter_map(|i| match i.kind {
                InsnKind::ArLoad { ar, .. } => Some(ar),
                _ => None,
            })
            .collect();
        assert_eq!(loads, vec![0, 0]);
    }
}

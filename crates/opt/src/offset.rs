//! Simple offset assignment (SOA).
//!
//! On processors with address-generation units, "incrementing an address
//! register does not require an extra instruction or cycle. As a result,
//! it is desirable to assign variables to memory such that as many
//! variable accesses as possible refer to adjacent memory locations"
//! (Section 3.3). [`soa_order`] implements Liao's classic heuristic:
//! build the *access graph* (edge weight = number of adjacent access
//! pairs), then greedily select maximum-weight edges that keep the chosen
//! set a collection of simple paths; concatenating the paths gives the
//! storage order. [`soa_cost`] evaluates an order: every adjacent access
//! pair not reachable by a free post-modify costs one explicit
//! address-register operation.

use std::collections::HashMap;

use record_ir::Symbol;

use crate::budget::{BudgetExceeded, SearchBudget};

/// Computes a storage order for the accessed scalars using Liao's
/// maximum-weight path-cover heuristic.
///
/// Symbols never accessed adjacently still appear (in first-access
/// order), so the result is a permutation of the distinct symbols in
/// `accesses`.
///
/// # Example
///
/// ```
/// use record_ir::Symbol;
/// use record_opt::{soa_cost, soa_order};
///
/// let s = |n: &str| Symbol::new(n);
/// // access sequence a b a b c a — a and b should be neighbours
/// let acc = vec![s("a"), s("b"), s("a"), s("b"), s("c"), s("a")];
/// let order = soa_order(&acc);
/// let pos = |x: &str| order.iter().position(|o| o.as_str() == x).unwrap();
/// assert_eq!((pos("a") as i64 - pos("b") as i64).abs(), 1);
/// // the optimized order never costs more than declaration order
/// let decl = vec![s("a"), s("b"), s("c")];
/// assert!(soa_cost(&order, &acc, 1) <= soa_cost(&decl, &acc, 1));
/// ```
pub fn soa_order(accesses: &[Symbol]) -> Vec<Symbol> {
    soa_order_budgeted(accesses, &SearchBudget::unlimited()).expect("unlimited budget never fires")
}

/// [`soa_order`] under a [`SearchBudget`]: charges one step per access
/// and per access-graph edge examined during the path cover.
///
/// # Errors
///
/// [`BudgetExceeded`] if the budget runs out mid-search.
pub fn soa_order_budgeted(
    accesses: &[Symbol],
    budget: &SearchBudget,
) -> Result<Vec<Symbol>, BudgetExceeded> {
    let mut first_seen: Vec<Symbol> = Vec::new();
    let mut index: HashMap<&Symbol, usize> = HashMap::new();
    for a in accesses {
        if !index.contains_key(a) {
            index.insert(a, first_seen.len());
            first_seen.push(a.clone());
        }
    }
    let n = first_seen.len();
    if n <= 2 {
        return Ok(first_seen);
    }
    budget.charge(accesses.len() as u64)?;

    // access graph
    let mut weight: HashMap<(usize, usize), u32> = HashMap::new();
    for pair in accesses.windows(2) {
        let (u, v) = (index[&pair[0]], index[&pair[1]]);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        *weight.entry(key).or_insert(0) += 1;
    }

    // greedy max-weight path cover
    let mut edges: Vec<((usize, usize), u32)> = weight.into_iter().collect();
    edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut degree = vec![0u8; n];
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for ((u, v), _) in edges {
        budget.charge(1)?;
        if degree[u] >= 2 || degree[v] >= 2 {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru == rv {
            continue; // would close a cycle
        }
        parent[ru] = rv;
        degree[u] += 1;
        degree[v] += 1;
        adj[u].push(v);
        adj[v].push(u);
    }

    // walk each path from an endpoint; then isolated nodes
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] || degree[start] > 1 {
            continue;
        }
        // endpoint (degree 0 or 1)
        let mut cur = start;
        let mut prev = usize::MAX;
        loop {
            visited[cur] = true;
            order.push(first_seen[cur].clone());
            let next = adj[cur].iter().copied().find(|&x| x != prev && !visited[x]);
            match next {
                Some(nx) => {
                    prev = cur;
                    cur = nx;
                }
                None => break,
            }
        }
    }
    // safety: anything missed (cycles cannot occur, but be robust)
    for i in 0..n {
        if !visited[i] {
            order.push(first_seen[i].clone());
        }
    }
    Ok(order)
}

/// The number of explicit address-register operations a single AGU
/// pointer needs to serve `accesses` when scalars are stored in `order`:
/// each step between consecutive accesses whose address distance exceeds
/// `post_range` costs 1.
///
/// Symbols in `accesses` that are missing from `order` are ignored.
pub fn soa_cost(order: &[Symbol], accesses: &[Symbol], post_range: i8) -> u32 {
    let pos: HashMap<&Symbol, i64> = order.iter().enumerate().map(|(i, s)| (s, i as i64)).collect();
    let addrs: Vec<i64> = accesses.iter().filter_map(|a| pos.get(a).copied()).collect();
    let mut cost = 0;
    for w in addrs.windows(2) {
        if (w[1] - w[0]).abs() > post_range as i64 {
            cost += 1;
        }
    }
    cost
}

/// General offset assignment (GOA): partitions the access sequence among
/// `k` address registers and offset-assigns each partition independently
/// (Leupers' formulation). Returns the per-register variable partitions
/// and the total residual cost.
///
/// The partitioner is the standard greedy: variables are assigned to the
/// register whose access subsequence they extend most cheaply, seeded by
/// total access frequency. `k = 1` degenerates to [`soa_order`].
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use record_ir::Symbol;
/// use record_opt::offset::goa;
///
/// let acc: Vec<Symbol> =
///     "a x a x b y b y".split_whitespace().map(Symbol::new).collect();
/// // two interleaved chains: two pointers cover them with zero cost
/// let (parts, cost) = goa(&acc, 2, 1);
/// assert_eq!(parts.len(), 2);
/// assert_eq!(cost, 0);
/// ```
pub fn goa(accesses: &[Symbol], k: usize, post_range: i8) -> (Vec<Vec<Symbol>>, u32) {
    assert!(k >= 1, "GOA needs at least one address register");
    // distinct variables by access frequency, heaviest first
    let mut freq: HashMap<&Symbol, u32> = HashMap::new();
    for a in accesses {
        *freq.entry(a).or_insert(0) += 1;
    }
    let mut vars: Vec<&Symbol> = freq.keys().copied().collect();
    vars.sort_by(|a, b| freq[b].cmp(&freq[a]).then(a.cmp(b)));

    let mut partitions: Vec<Vec<Symbol>> = vec![Vec::new(); k];
    for var in vars {
        // try each register; keep the one minimizing the combined cost of
        // its (re-offset-assigned) partition
        let mut best: Option<(usize, u32)> = None;
        #[allow(clippy::needless_range_loop)] // r is also the result index
        for r in 0..k {
            let mut trial: Vec<Symbol> = partitions[r].clone();
            trial.push(var.clone());
            let cost = partition_cost(&trial, accesses, post_range);
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((r, cost));
            }
        }
        let (r, _) = best.expect("k >= 1");
        partitions[r].push(var.clone());
    }

    let total = partitions.iter().map(|p| partition_cost(p, accesses, post_range)).sum();
    (partitions, total)
}

/// The SOA cost of the subsequence of `accesses` restricted to `members`,
/// under the best ordering [`soa_order`] finds for that subsequence.
fn partition_cost(members: &[Symbol], accesses: &[Symbol], post_range: i8) -> u32 {
    if members.is_empty() {
        return 0;
    }
    let sub: Vec<Symbol> = accesses.iter().filter(|a| members.contains(a)).cloned().collect();
    let order = soa_order(&sub);
    soa_cost(&order, &sub, post_range)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: &str) -> Symbol {
        Symbol::new(n)
    }

    fn seq(names: &str) -> Vec<Symbol> {
        names.split_whitespace().map(Symbol::new).collect()
    }

    #[test]
    fn empty_and_trivial() {
        assert!(soa_order(&[]).is_empty());
        assert_eq!(soa_order(&[s("a")]), vec![s("a")]);
        assert_eq!(soa_order(&seq("a b")).len(), 2);
    }

    #[test]
    fn order_is_a_permutation() {
        let acc = seq("a b c d a c b d a");
        let order = soa_order(&acc);
        let mut sorted: Vec<String> = order.iter().map(|x| x.to_string()).collect();
        sorted.sort();
        assert_eq!(sorted, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn liao_example_improves_over_declaration_order() {
        // classic SOA example: sequence favouring a-b and c-d adjacency
        let acc = seq("a b a b c d c d a b");
        let order = soa_order(&acc);
        let decl = seq("a c b d");
        assert!(soa_cost(&order, &acc, 1) < soa_cost(&decl, &acc, 1));
        // the a-b-c-d chain leaves only the d..a wrap as a costly hop
        assert_eq!(soa_cost(&order, &acc, 1), 1);
    }

    #[test]
    fn heavy_edge_wins() {
        // x-y adjacent 3 times, x-z once: x must neighbour y
        let acc = seq("x y x y x y x z");
        let order = soa_order(&acc);
        let pos = |n: &str| order.iter().position(|o| o.as_str() == n).unwrap() as i64;
        assert_eq!((pos("x") - pos("y")).abs(), 1);
    }

    #[test]
    fn cost_respects_post_range() {
        let order = seq("a b c");
        let acc = seq("a c a c");
        assert_eq!(soa_cost(&order, &acc, 1), 3); // distance 2 each step
        assert_eq!(soa_cost(&order, &acc, 2), 0); // range-2 AGU covers it
    }

    #[test]
    fn repeated_same_symbol_costs_nothing() {
        let order = seq("a b");
        let acc = seq("a a a");
        assert_eq!(soa_cost(&order, &acc, 0), 0);
    }

    #[test]
    fn goa_with_one_register_equals_soa() {
        let acc = seq("a b a b c d c d a b");
        let order = soa_order(&acc);
        let (parts, cost) = goa(&acc, 1, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(cost, soa_cost(&order, &acc, 1));
    }

    #[test]
    fn goa_extra_registers_never_hurt() {
        let acc = seq("a x b y a x b y c z c z");
        let (_, c1) = goa(&acc, 1, 1);
        let (_, c2) = goa(&acc, 2, 1);
        let (_, c4) = goa(&acc, 4, 1);
        assert!(c2 <= c1, "2 regs {c2} > 1 reg {c1}");
        assert!(c4 <= c2, "4 regs {c4} > 2 regs {c2}");
    }

    #[test]
    fn goa_splits_three_way_cycles() {
        // a->b->c->a cycles defeat one pointer (the wrap always costs),
        // but two pointers split the triangle into free chains
        let acc = seq("a b c a b c a b c");
        let (_, c1) = goa(&acc, 1, 1);
        let (parts, c2) = goa(&acc, 2, 1);
        assert!(c1 > 0);
        assert!(c2 < c1, "2 regs {c2} vs 1 reg {c1}");
        let nonempty: Vec<_> = parts.iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(nonempty.len(), 2);
    }

    #[test]
    fn goa_partitions_cover_all_variables() {
        let acc = seq("p q r s p q r s");
        let (parts, _) = goa(&acc, 3, 1);
        let mut all: Vec<String> = parts.iter().flatten().map(|v| v.to_string()).collect();
        all.sort();
        assert_eq!(all, vec!["p", "q", "r", "s"]);
    }

    #[test]
    #[should_panic(expected = "at least one address register")]
    fn goa_rejects_zero_registers() {
        goa(&seq("a"), 0, 1);
    }
}

//! Embedded-specific code optimizations — the catalogue of Section 3.3 of
//! the paper, implemented as passes over [`record_isa::Code`]:
//!
//! * [`layout`] — data-memory placement (the substrate the next two passes
//!   rewrite),
//! * [`offset`] — simple offset assignment (Bartley/Liao/Leupers): order
//!   scalars so consecutive accesses sit in adjacent words and an
//!   address-generation unit's free post-increment does the addressing,
//! * [`address`] — addressing-mode assignment: direct where available,
//!   AGU-indirect with post-modify for array streams and (on targets
//!   without direct addressing) for scalars,
//! * [`banks`] — memory-bank assignment (Sudarsanam/Malik): place operand
//!   pairs in different banks so parallel moves can fetch them together,
//! * [`compact`] — code compaction: C25-style instruction fusion
//!   (`LT`+`APAC` = `LTA`), 56k-style parallel-move packing, and a
//!   bundle scheduler with both a list-scheduling heuristic and an
//!   exhaustive branch-and-bound mode ("compiler algorithms, which so far
//!   have been rejected due to their complexity, should be reconsidered"),
//! * [`modes`] — mode-change (residual control) minimization (Liao):
//!   insert the fewest `SOVM`/`ROVM`-style instructions that satisfy every
//!   instruction's mode requirement.
//!
//! Every pass both mutates the code and returns a statistics struct, so
//! the ablation benches in `record-bench` can quantify each design choice.
//!
//! The search-based passes (compaction's branch-and-bound, the offset
//! and bank searches) additionally come in `_budgeted` variants that
//! charge elementary steps against a [`SearchBudget`] and abort with
//! [`BudgetExceeded`] instead of running away — the unbudgeted entry
//! points delegate to them with an unlimited budget.

pub mod address;
pub mod banks;
pub mod budget;
pub mod compact;
pub mod layout;
pub mod modes;
pub mod offset;

pub use address::{assign_addresses, AddressError, AddressStats};
pub use banks::{assign_banks, assign_banks_budgeted, BankStats};
pub use budget::{BudgetExceeded, SearchBudget};
pub use compact::{
    fuse, hoist_invariant_prefix, pack_moves, schedule, schedule_budgeted, ScheduleMode,
};
pub use layout::{declaration_layout, layout_in_order, LayoutError};
pub use modes::{insert_mode_changes, ModeStrategy};
pub use offset::{goa, soa_cost, soa_order, soa_order_budgeted};

//! Code compaction: exploiting instruction-level parallelism in the
//! instruction format.
//!
//! Three mechanisms, matching what real DSP families offer:
//!
//! * [`fuse`] — combo instructions (TMS320C25 `LT`+`APAC` = `LTA`):
//!   adjacent independent instruction pairs listed in the target's fusion
//!   table are merged into one word, in either order;
//! * [`pack_moves`] — parallel moves (DSP56k): an arithmetic instruction
//!   absorbs up to `max_moves` following independent move instructions
//!   (subject to the distinct-bank constraint, which is why bank
//!   assignment runs first);
//! * [`schedule`] — bundle scheduling over straight-line segments with a
//!   dependence DAG: a list-scheduling heuristic, or exhaustive
//!   branch-and-bound for provably minimal bundle counts on small
//!   segments ("compiler algorithms, which so far have been rejected due
//!   to their complexity, should be reconsidered" — Section 3.2).

use record_isa::target::ParallelDesc;
use record_isa::{Code, Insn, InsnKind, Loc, MemLoc, RegId, TargetDesc};

use crate::budget::{BudgetExceeded, SearchBudget};

/// Which scheduling algorithm [`schedule`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleMode {
    /// Critical-path list scheduling (fast, near-optimal).
    List,
    /// Exhaustive branch-and-bound (optimal bundle count; falls back to
    /// list scheduling on segments longer than the given limit).
    BranchAndBound {
        /// Maximum segment length explored exhaustively.
        max_segment: usize,
    },
}

/// Read/write effects of an instruction, for dependence tests.
#[derive(Default, Debug)]
struct Effects {
    reg_reads: Vec<RegId>,
    reg_writes: Vec<RegId>,
    mem_reads: Vec<MemLoc>,
    mem_writes: Vec<MemLoc>,
    /// `(ar, modifies)` pairs for address-register usage.
    ars: Vec<(u16, bool)>,
}

fn effects(insn: &Insn) -> Effects {
    let mut e = Effects::default();
    collect_effects(insn, &mut e);
    e
}

fn note_mem(e: &mut Effects, m: &MemLoc, write: bool) {
    if write {
        e.mem_writes.push(m.clone());
    } else {
        e.mem_reads.push(m.clone());
    }
    if let record_isa::AddrMode::Indirect { ar, post } = m.mode {
        e.ars.push((ar, post != 0));
    }
}

fn collect_effects(insn: &Insn, e: &mut Effects) {
    match &insn.kind {
        InsnKind::Compute { dst, expr } => {
            for l in expr.reads() {
                match l {
                    Loc::Reg(r) => e.reg_reads.push(*r),
                    Loc::Mem(m) => note_mem(e, m, false),
                    Loc::Imm(_) => {}
                }
            }
            match dst {
                Loc::Reg(r) => e.reg_writes.push(*r),
                Loc::Mem(m) => note_mem(e, m, true),
                Loc::Imm(_) => {}
            }
        }
        InsnKind::ArLoad { ar, .. } | InsnKind::ArAdd { ar, .. } => {
            e.ars.push((*ar, true));
        }
        InsnKind::ArLoadIndexed { ar, index, .. } => {
            e.ars.push((*ar, true));
            e.mem_reads.push(MemLoc::scalar(index.clone()));
        }
        InsnKind::ArLoadMem { ar, cell } => {
            e.ars.push((*ar, true));
            e.mem_reads.push(MemLoc::scalar(cell.clone()));
        }
        InsnKind::ArStore { ar, cell } => {
            e.ars.push((*ar, false));
            e.mem_writes.push(MemLoc::scalar(cell.clone()));
        }
        InsnKind::PtrInit { cell, .. } => {
            e.mem_writes.push(MemLoc::scalar(cell.clone()));
        }
        _ => {}
    }
    for p in &insn.parallel {
        collect_effects(p, e);
    }
}

/// `true` if the two instructions can execute in either order or in
/// parallel with identical results.
fn independent(a: &Insn, b: &Insn) -> bool {
    if !matches!(a.kind, InsnKind::Compute { .. }) || !matches!(b.kind, InsnKind::Compute { .. }) {
        return false;
    }
    let ea = effects(a);
    let eb = effects(b);
    // register conflicts: any write vs. read/write of the same register
    let reg_conflict = |w: &[RegId], other_r: &[RegId], other_w: &[RegId]| {
        w.iter().any(|r| other_r.contains(r) || other_w.contains(r))
    };
    if reg_conflict(&ea.reg_writes, &eb.reg_reads, &eb.reg_writes)
        || reg_conflict(&eb.reg_writes, &ea.reg_reads, &ea.reg_writes)
    {
        return false;
    }
    // memory conflicts
    let mem_conflict = |w: &[MemLoc], other_r: &[MemLoc], other_w: &[MemLoc]| {
        w.iter().any(|m| {
            other_r.iter().any(|o| m.may_alias(o)) || other_w.iter().any(|o| m.may_alias(o))
        })
    };
    if mem_conflict(&ea.mem_writes, &eb.mem_reads, &eb.mem_writes)
        || mem_conflict(&eb.mem_writes, &ea.mem_reads, &ea.mem_writes)
    {
        return false;
    }
    // address-register conflicts: sharing an AR is fine only if neither
    // side modifies it
    for (ar, amod) in &ea.ars {
        for (br, bmod) in &eb.ars {
            if ar == br && (*amod || *bmod) {
                return false;
            }
        }
    }
    true
}

/// The operand part of an assembly text (everything after the mnemonic).
fn operand_part(text: &str) -> &str {
    text.split_once(' ').map(|(_, rest)| rest).unwrap_or("")
}

/// Applies the target's fusion table to adjacent instruction pairs,
/// repeatedly, until a fixpoint; returns the number of fusions performed.
///
/// A pair `(x, y)` fuses when the table lists `(x.rule, y.rule)` directly,
/// or lists `(y.rule, x.rule)` and the two instructions are independent
/// (so they may be swapped). Both cases also require independence, since
/// the fused instruction executes both effects in the same cycle.
pub fn fuse(code: &mut Code, target: &TargetDesc) -> u32 {
    let mut fused_total = 0u32;
    loop {
        let mut fused_this_round = 0u32;
        let insns = std::mem::take(&mut code.insns);
        let mut out: Vec<Insn> = Vec::with_capacity(insns.len());
        let mut it = insns.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(b) = it.peek() else {
                out.push(a);
                continue;
            };
            let (Some(ra), Some(rb)) = (a.rule, b.rule) else {
                out.push(a);
                continue;
            };
            let direct = target.fusions.iter().find(|f| f.first == ra && f.second == rb);
            let swapped = target.fusions.iter().find(|f| f.first == rb && f.second == ra);
            let chosen = match (direct, swapped) {
                (Some(f), _) if independent(&a, b) => Some((f, false)),
                (_, Some(f)) if independent(&a, b) => Some((f, true)),
                _ => None,
            };
            if let Some((f, swap)) = chosen {
                let b = it.next().expect("peeked");
                let (first, second) = if swap { (b, a) } else { (a, b) };
                let text = f
                    .asm
                    .replace("{a}", operand_part(&first.text))
                    .replace("{b}", operand_part(&second.text));
                let mut fusedi = second.clone();
                fusedi.rule = None;
                fusedi.text = text.trim().to_string();
                fusedi.words = f.cost.words;
                fusedi.cycles = f.cost.cycles;
                fusedi.units = first.units | second.units;
                let mut firstp = first;
                firstp.words = 0;
                firstp.cycles = 0;
                // the fused text already names both halves
                firstp.text = String::new();
                fusedi.parallel.push(firstp);
                out.push(fusedi);
                fused_this_round += 1;
            } else {
                out.push(a);
            }
        }
        code.insns = out;
        fused_total += fused_this_round;
        if fused_this_round == 0 {
            break;
        }
    }
    fused_total
}

fn is_pure_move(insn: &Insn, pd: &ParallelDesc) -> bool {
    insn.units & pd.move_units != 0
        && matches!(&insn.kind, InsnKind::Compute { expr, .. } if matches!(expr, record_isa::SemExpr::Loc(_)))
}

/// The memory banks touched by an instruction (reads and writes).
fn banks_touched(insn: &Insn) -> Vec<record_ir::Bank> {
    let e = effects(insn);
    e.mem_reads.iter().chain(e.mem_writes.iter()).map(|m| m.bank).collect()
}

/// Packs following move instructions into arithmetic instructions on
/// parallel-move targets; returns the number of moves absorbed.
///
/// A move packs into the closest preceding arithmetic instruction when it
/// is independent of it (and of every move already packed there), the
/// move budget is not exhausted, and — when the target demands it — the
/// packed moves address distinct banks.
pub fn pack_moves(code: &mut Code, target: &TargetDesc) -> u32 {
    let Some(pd) = &target.parallel else {
        return 0;
    };
    let insns = std::mem::take(&mut code.insns);
    let mut out: Vec<Insn> = Vec::with_capacity(insns.len());
    let mut packed = 0u32;
    for insn in insns {
        let can_pack = !out.is_empty() && is_pure_move(&insn, pd);
        if can_pack {
            let host = out.last_mut().expect("non-empty");
            let host_ok = matches!(host.kind, InsnKind::Compute { .. })
                && !is_pure_move(host, pd)
                && host.parallel.len() < pd.max_moves as usize
                && independent(host, &insn);
            let banks_ok = !pd.moves_need_distinct_banks || {
                let mut banks = banks_touched(&insn);
                for p in &host.parallel {
                    banks.extend(banks_touched(p));
                }
                banks.sort();
                let before = banks.len();
                banks.dedup();
                banks.len() == before
            };
            if host_ok && banks_ok {
                let mut m = insn;
                m.words = 0;
                m.cycles = 0;
                let host = out.last_mut().expect("non-empty");
                host.units |= m.units;
                host.parallel.push(m);
                packed += 1;
                continue;
            }
        }
        out.push(insn);
    }
    code.insns = out;
    packed
}

/// Hoists loop-invariant leading instructions out of loop bodies.
///
/// A leading body instruction moves to the preheader when it only reads
/// loop-invariant operands (no loop-counter indexing, no memory written
/// inside the body), writes a register that no other body instruction
/// writes, and does not read its own destination. The classic payoff is a
/// constant load (`LACK k`) ahead of a store loop: the remaining
/// single-instruction body becomes eligible for hardware repeat.
///
/// Returns the number of instructions hoisted.
pub fn hoist_invariant_prefix(code: &mut Code) -> u32 {
    let mut hoisted = 0u32;
    loop {
        let mut changed = false;
        let insns = std::mem::take(&mut code.insns);
        let mut out: Vec<Insn> = Vec::with_capacity(insns.len());
        let mut i = 0usize;
        while i < insns.len() {
            let insn = &insns[i];
            if let InsnKind::LoopStart { var, .. } = &insn.kind {
                // find the matching end
                let mut depth = 1;
                let mut j = i + 1;
                while j < insns.len() && depth > 0 {
                    match insns[j].kind {
                        InsnKind::LoopStart { .. } => depth += 1,
                        InsnKind::LoopEnd => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let body = &insns[i + 1..j - 1];
                if let Some(first) = body.first() {
                    if hoistable(first, &body[1..], var) {
                        out.push(first.clone()); // preheader
                        out.push(insn.clone()); // LoopStart
                        out.extend(body[1..].iter().cloned());
                        out.push(insns[j - 1].clone()); // LoopEnd
                        i = j;
                        hoisted += 1;
                        changed = true;
                        continue;
                    }
                }
                out.extend(insns[i..j].iter().cloned());
                i = j;
                continue;
            }
            out.push(insn.clone());
            i += 1;
        }
        code.insns = out;
        if !changed {
            return hoisted;
        }
    }
}

fn hoistable(first: &Insn, rest: &[Insn], loop_var: &record_ir::Symbol) -> bool {
    let InsnKind::Compute { dst, expr } = &first.kind else {
        return false;
    };
    if !first.parallel.is_empty() {
        return false;
    }
    // destination must be a register no other body instruction writes
    let Loc::Reg(dst_reg) = dst else { return false };
    // reads must be loop-invariant: immediates or memory with no loop-var
    // index, and the instruction must not read its own destination
    for l in expr.reads() {
        match l {
            Loc::Imm(_) => {}
            Loc::Reg(r) => {
                if r == dst_reg {
                    return false;
                }
                let written_later = rest.iter().any(|o| {
                    let e = effects(o);
                    e.reg_writes.contains(r)
                });
                if written_later {
                    return false;
                }
            }
            Loc::Mem(m) => {
                if m.index.is_some() {
                    return false;
                }
                let written_later = rest.iter().any(|o| {
                    let e = effects(o);
                    e.mem_writes.iter().any(|w| w.may_alias(m))
                });
                if written_later {
                    return false;
                }
            }
        }
    }
    let _ = loop_var;
    // no body instruction may write the destination, and saturation-mode
    // boundaries inside the body would make the hoisted value's context
    // ambiguous — be conservative
    for o in rest {
        let e = effects(o);
        if e.reg_writes.contains(dst_reg) {
            return false;
        }
        if matches!(o.kind, InsnKind::SetMode { .. }) {
            return false;
        }
    }
    true
}

/// Scheduling statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Instructions before bundling.
    pub insns_before: usize,
    /// Bundles after scheduling.
    pub bundles_after: usize,
}

/// Bundle-schedules every straight-line segment of the code; returns the
/// aggregate statistics. Only targets with a parallel-move format are
/// affected (others are returned unchanged with equal counts).
pub fn schedule(code: &mut Code, target: &TargetDesc, mode: ScheduleMode) -> ScheduleStats {
    schedule_budgeted(code, target, mode, &SearchBudget::unlimited())
        .expect("unlimited budget never fires")
}

/// [`schedule`] under a [`SearchBudget`]: the branch-and-bound search
/// charges one step per DFS node and per bundle candidate it enumerates,
/// so pathological segments abort instead of exploring an exponential
/// space. On exhaustion the code is left **unmodified**.
///
/// # Errors
///
/// [`BudgetExceeded`] if the budget runs out mid-search.
pub fn schedule_budgeted(
    code: &mut Code,
    target: &TargetDesc,
    mode: ScheduleMode,
    budget: &SearchBudget,
) -> Result<ScheduleStats, BudgetExceeded> {
    let mut stats = ScheduleStats::default();
    let Some(pd) = target.parallel.clone() else {
        let n = code.insns.len();
        return Ok(ScheduleStats { insns_before: n, bundles_after: n });
    };
    let insns = &code.insns;
    let mut out = Vec::with_capacity(insns.len());
    let mut segment: Vec<Insn> = Vec::new();
    for insn in insns {
        if matches!(insn.kind, InsnKind::Compute { .. }) {
            segment.push(insn.clone());
        } else {
            flush_segment(&mut segment, &pd, mode, &mut out, &mut stats, budget)?;
            out.push(insn.clone());
        }
    }
    flush_segment(&mut segment, &pd, mode, &mut out, &mut stats, budget)?;
    code.insns = out;
    Ok(stats)
}

fn flush_segment(
    segment: &mut Vec<Insn>,
    pd: &ParallelDesc,
    mode: ScheduleMode,
    out: &mut Vec<Insn>,
    stats: &mut ScheduleStats,
    budget: &SearchBudget,
) -> Result<(), BudgetExceeded> {
    if segment.is_empty() {
        return Ok(());
    }
    let seg = std::mem::take(segment);
    stats.insns_before += seg.len();
    let bundles = match mode {
        ScheduleMode::List => list_schedule(&seg, pd),
        ScheduleMode::BranchAndBound { max_segment } if seg.len() <= max_segment => {
            branch_and_bound(&seg, pd, budget)?
        }
        ScheduleMode::BranchAndBound { .. } => list_schedule(&seg, pd),
    };
    stats.bundles_after += bundles.len();
    for bundle in bundles {
        out.push(build_bundle(&seg, bundle));
    }
    Ok(())
}

/// A bundle: indices into the segment; the first is the host.
type Bundle = Vec<usize>;

fn dep_matrix(seg: &[Insn]) -> Vec<Vec<bool>> {
    let n = seg.len();
    let mut dep = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            dep[i][j] = !independent(&seg[i], &seg[j]);
        }
    }
    dep
}

/// Can `cand` join `bundle`? At most one non-move, move budget, distinct
/// banks, pairwise independence.
fn fits(seg: &[Insn], pd: &ParallelDesc, bundle: &Bundle, cand: usize) -> bool {
    let moves_in = |ix: usize| is_pure_move(&seg[ix], pd);
    let n_moves = bundle.iter().filter(|&&i| moves_in(i)).count() + usize::from(moves_in(cand));
    let n_arith = bundle.len() + 1 - n_moves;
    if n_arith > 1 || n_moves > pd.max_moves as usize {
        return false;
    }
    for &i in bundle {
        if !independent(&seg[i], &seg[cand]) {
            return false;
        }
    }
    if pd.moves_need_distinct_banks {
        let mut banks = Vec::new();
        for &i in bundle.iter().chain(std::iter::once(&cand)) {
            if moves_in(i) {
                banks.extend(banks_touched(&seg[i]));
            }
        }
        banks.sort();
        let before = banks.len();
        banks.dedup();
        if banks.len() != before {
            return false;
        }
    }
    true
}

fn list_schedule(seg: &[Insn], pd: &ParallelDesc) -> Vec<Bundle> {
    let n = seg.len();
    let dep = dep_matrix(seg);
    // critical-path priority
    let mut height = vec![1usize; n];
    for i in (0..n).rev() {
        for j in i + 1..n {
            if dep[i][j] {
                height[i] = height[i].max(height[j] + 1);
            }
        }
    }
    let mut scheduled = vec![false; n];
    let mut done = 0usize;
    let mut bundles = Vec::new();
    while done < n {
        // ready: unscheduled with all predecessors scheduled
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && (0..i).all(|p| !dep[p][i] || scheduled[p]))
            .collect();
        debug_assert!(!ready.is_empty(), "DAG always has a ready node");
        let mut order = ready.clone();
        order.sort_by(|a, b| height[*b].cmp(&height[*a]).then(a.cmp(b)));
        let mut bundle: Bundle = vec![order[0]];
        for &cand in &order[1..] {
            if fits(seg, pd, &bundle, cand) {
                bundle.push(cand);
            }
        }
        for &i in &bundle {
            scheduled[i] = true;
            done += 1;
        }
        bundles.push(bundle);
    }
    bundles
}

fn branch_and_bound(
    seg: &[Insn],
    pd: &ParallelDesc,
    budget: &SearchBudget,
) -> Result<Vec<Bundle>, BudgetExceeded> {
    let n = seg.len();
    let dep = dep_matrix(seg);
    let mut best: Vec<Bundle> = list_schedule(seg, pd);
    let width = 1 + pd.max_moves as usize;
    let mut current: Vec<Bundle> = Vec::new();
    let mut scheduled = vec![false; n];

    fn enumerate_bundles(
        seg: &[Insn],
        pd: &ParallelDesc,
        ready: &[usize],
        start: usize,
        bundle: &mut Bundle,
        out: &mut Vec<Bundle>,
        budget: &SearchBudget,
    ) -> Result<(), BudgetExceeded> {
        for (k, &cand) in ready.iter().enumerate().skip(start) {
            if bundle.is_empty() || fits(seg, pd, bundle, cand) {
                budget.charge(1)?;
                bundle.push(cand);
                out.push(bundle.clone());
                enumerate_bundles(seg, pd, ready, k + 1, bundle, out, budget)?;
                bundle.pop();
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        seg: &[Insn],
        pd: &ParallelDesc,
        dep: &[Vec<bool>],
        scheduled: &mut Vec<bool>,
        done: usize,
        current: &mut Vec<Bundle>,
        best: &mut Vec<Bundle>,
        width: usize,
        budget: &SearchBudget,
    ) -> Result<(), BudgetExceeded> {
        budget.charge(1)?;
        let n = seg.len();
        if done == n {
            if current.len() < best.len() {
                *best = current.clone();
            }
            return Ok(());
        }
        // lower bound prune
        let remaining = n - done;
        let lb = current.len() + remaining.div_ceil(width);
        if lb >= best.len() {
            return Ok(());
        }
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && (0..i).all(|p| !dep[p][i] || scheduled[p]))
            .collect();
        let mut candidates = Vec::new();
        let mut scratch = Vec::new();
        enumerate_bundles(seg, pd, &ready, 0, &mut scratch, &mut candidates, budget)?;
        // try bigger bundles first
        candidates.sort_by_key(|b| std::cmp::Reverse(b.len()));
        for bundle in candidates {
            for &i in &bundle {
                scheduled[i] = true;
            }
            current.push(bundle.clone());
            dfs(seg, pd, dep, scheduled, done + bundle.len(), current, best, width, budget)?;
            current.pop();
            for &i in &bundle {
                scheduled[i] = false;
            }
        }
        Ok(())
    }

    dfs(seg, pd, &dep, &mut scheduled, 0, &mut current, &mut best, width, budget)?;
    Ok(best)
}

fn build_bundle(seg: &[Insn], bundle: Bundle) -> Insn {
    // host: the non-move if present, else the first member
    let host_ix = bundle
        .iter()
        .copied()
        .find(|&i| !matches!(&seg[i].kind, InsnKind::Compute { expr, .. } if matches!(expr, record_isa::SemExpr::Loc(_))))
        .unwrap_or(bundle[0]);
    let mut host = seg[host_ix].clone();
    for &i in &bundle {
        if i == host_ix {
            continue;
        }
        let mut m = seg[i].clone();
        m.words = 0;
        m.cycles = 0;
        host.units |= m.units;
        host.parallel.push(m);
    }
    host
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // Code::default() + .insns is the clearest test setup
mod tests {
    use super::*;
    use record_ir::{BinOp, Symbol};
    use record_isa::{RegClassId, SemExpr};

    fn reg(class: u16, ix: u16) -> Loc {
        Loc::Reg(RegId::new(RegClassId(class), ix))
    }

    fn mem(name: &str) -> Loc {
        Loc::Mem(MemLoc::scalar(name))
    }

    #[test]
    fn independent_detects_reg_conflicts() {
        let a = Insn::mov(reg(0, 0), mem("x"), "LD r0,x", 1, 1);
        let b = Insn::mov(reg(0, 0), mem("y"), "LD r0,y", 1, 1); // same dst
        assert!(!independent(&a, &b));
        let c = Insn::mov(reg(0, 1), mem("y"), "LD r1,y", 1, 1);
        assert!(independent(&a, &c));
        let d = Insn::compute(
            reg(0, 2),
            SemExpr::bin(BinOp::Add, SemExpr::loc(reg(0, 0)), SemExpr::loc(reg(0, 1))),
            "ADD r2,r0,r1",
            1,
            1,
        );
        assert!(!independent(&a, &d), "d reads a's destination");
    }

    #[test]
    fn independent_detects_memory_aliasing() {
        let a = Insn::mov(mem("x"), reg(0, 0), "ST x", 1, 1);
        let b = Insn::mov(reg(0, 1), mem("x"), "LD x", 1, 1);
        assert!(!independent(&a, &b));
        let c = Insn::mov(reg(0, 1), mem("z"), "LD z", 1, 1);
        assert!(independent(&a, &c));
    }

    #[test]
    fn independent_respects_ar_post_modify() {
        let walk = MemLoc {
            base: Symbol::new("a"),
            disp: 0,
            index: Some(Symbol::new("i")),
            down: false,
            bank: record_ir::Bank::X,
            mode: record_isa::AddrMode::Indirect { ar: 0, post: 1 },
        };
        let same_ar = MemLoc {
            base: Symbol::new("b"),
            disp: 0,
            index: Some(Symbol::new("i")),
            down: false,
            bank: record_ir::Bank::X,
            mode: record_isa::AddrMode::Indirect { ar: 0, post: 0 },
        };
        let a = Insn::mov(reg(0, 0), Loc::Mem(walk), "LD *ar0+", 1, 1);
        let b = Insn::mov(reg(0, 1), Loc::Mem(same_ar), "LD *ar0", 1, 1);
        assert!(!independent(&a, &b), "post-modify orders accesses via ar0");
    }

    #[test]
    fn fuse_applies_lt_apac_as_lta() {
        let t = record_isa::targets::tic25::target();
        let lt_rule = t.rules.iter().find(|r| r.asm == "LT {0}").unwrap().id;
        let apac_rule = t.rules.iter().find(|r| r.asm == "APAC").unwrap().id;
        let acc = t.reg_class("acc").unwrap();
        let p = t.reg_class("p").unwrap();
        let tr = t.reg_class("t").unwrap();

        let mut lt = Insn::mov(Loc::Reg(RegId::singleton(tr)), mem("c"), "LT c", 1, 1);
        lt.rule = Some(lt_rule);
        let mut apac = Insn::compute(
            Loc::Reg(RegId::singleton(acc)),
            SemExpr::bin(
                BinOp::Add,
                SemExpr::loc(Loc::Reg(RegId::singleton(acc))),
                SemExpr::loc(Loc::Reg(RegId::singleton(p))),
            ),
            "APAC",
            1,
            1,
        );
        apac.rule = Some(apac_rule);

        // direct order LT;APAC
        let mut code = Code::default();
        code.insns = vec![lt.clone(), apac.clone()];
        assert_eq!(fuse(&mut code, &t), 1);
        assert_eq!(code.insns.len(), 1);
        assert_eq!(code.insns[0].text, "LTA c");
        assert_eq!(code.insns[0].words, 1);
        assert_eq!(code.insns[0].parallel.len(), 1);

        // swapped order APAC;LT also fuses (independent)
        let mut code = Code::default();
        code.insns = vec![apac, lt];
        assert_eq!(fuse(&mut code, &t), 1);
        assert_eq!(code.insns[0].text, "LTA c");
    }

    #[test]
    fn fuse_refuses_dependent_pairs() {
        let t = record_isa::targets::tic25::target();
        let lt_rule = t.rules.iter().find(|r| r.asm == "LT {0}").unwrap().id;
        let tr = t.reg_class("t").unwrap();
        // two LTs write the same register: dependent, no fusion even if a
        // (LT, LT) fusion existed; also (LT, LT) is not in the table.
        let mut a = Insn::mov(Loc::Reg(RegId::singleton(tr)), mem("x"), "LT x", 1, 1);
        a.rule = Some(lt_rule);
        let mut code = Code::default();
        code.insns = vec![a.clone(), a];
        assert_eq!(fuse(&mut code, &t), 0);
        assert_eq!(code.insns.len(), 2);
    }

    fn dsp_move(dst: Loc, src: &str, bank: record_ir::Bank) -> Insn {
        let mut m = MemLoc::scalar(src);
        m.bank = bank;
        let mut i = Insn::mov(dst, Loc::Mem(m), format!("MOVE {src}"), 1, 1);
        i.units = record_isa::pattern::units::MOVE;
        i
    }

    #[test]
    fn pack_moves_absorbs_following_independent_moves() {
        let t = record_isa::targets::dsp56k::target();
        let a_cl = t.reg_class("a").unwrap();
        let x_cl = t.reg_class("x").unwrap();
        let y_cl = t.reg_class("y").unwrap();
        let arith = Insn::compute(
            Loc::Reg(RegId::new(a_cl, 0)),
            SemExpr::bin(
                BinOp::Mul,
                SemExpr::loc(Loc::Reg(RegId::new(x_cl, 0))),
                SemExpr::loc(Loc::Reg(RegId::new(y_cl, 0))),
            ),
            "MPY x0,y0,a0",
            1,
            1,
        );
        // two moves loading the *other* input registers (x1/y1), one per bank
        let mv1 = dsp_move(Loc::Reg(RegId::new(x_cl, 1)), "p", record_ir::Bank::X);
        let mv2 = dsp_move(Loc::Reg(RegId::new(y_cl, 1)), "q", record_ir::Bank::Y);
        let mut code = Code::default();
        code.insns = vec![arith, mv1, mv2];
        let packed = pack_moves(&mut code, &t);
        assert_eq!(packed, 2, "{:#?}", code.insns);
        assert_eq!(code.insns.len(), 1);
        assert_eq!(code.insns[0].parallel.len(), 2);
        assert_eq!(code.size_words(), 1);
    }

    #[test]
    fn pack_moves_respects_bank_constraint() {
        let t = record_isa::targets::dsp56k::target();
        let a_cl = t.reg_class("a").unwrap();
        let x_cl = t.reg_class("x").unwrap();
        let arith = Insn::compute(
            Loc::Reg(RegId::new(a_cl, 0)),
            SemExpr::un(record_ir::UnOp::Neg, SemExpr::loc(Loc::Reg(RegId::new(a_cl, 0)))),
            "NEG a0",
            1,
            1,
        );
        // both moves in bank X: only the first can pack
        let mv1 = dsp_move(Loc::Reg(RegId::new(x_cl, 0)), "p", record_ir::Bank::X);
        let mv2 = dsp_move(Loc::Reg(RegId::new(x_cl, 1)), "q", record_ir::Bank::X);
        let mut code = Code::default();
        code.insns = vec![arith, mv1, mv2];
        let packed = pack_moves(&mut code, &t);
        assert_eq!(packed, 1);
        assert_eq!(code.insns.len(), 2);
    }

    #[test]
    fn pack_moves_refuses_dependent_move() {
        let t = record_isa::targets::dsp56k::target();
        let a_cl = t.reg_class("a").unwrap();
        let x_cl = t.reg_class("x").unwrap();
        let arith = Insn::compute(
            Loc::Reg(RegId::new(a_cl, 0)),
            SemExpr::bin(
                BinOp::Add,
                SemExpr::loc(Loc::Reg(RegId::new(a_cl, 0))),
                SemExpr::loc(Loc::Reg(RegId::new(x_cl, 0))),
            ),
            "ADD x0,a0",
            1,
            1,
        );
        // move overwrites x0 which the arithmetic reads — packing would
        // change semantics under parallel (read-old) rules only if the
        // arithmetic were after; our model forbids any write/read overlap.
        let mv = dsp_move(Loc::Reg(RegId::new(x_cl, 0)), "p", record_ir::Bank::X);
        let mut code = Code::default();
        code.insns = vec![arith, mv];
        assert_eq!(pack_moves(&mut code, &t), 0);
    }

    #[test]
    fn schedule_bundles_independent_ops() {
        let t = record_isa::targets::dsp56k::target();
        let a_cl = t.reg_class("a").unwrap();
        let x_cl = t.reg_class("x").unwrap();
        let y_cl = t.reg_class("y").unwrap();
        let arith = Insn::compute(
            Loc::Reg(RegId::new(a_cl, 0)),
            SemExpr::un(record_ir::UnOp::Neg, SemExpr::loc(Loc::Reg(RegId::new(a_cl, 0)))),
            "NEG a0",
            1,
            1,
        );
        let mv1 = dsp_move(Loc::Reg(RegId::new(x_cl, 0)), "p", record_ir::Bank::X);
        let mv2 = dsp_move(Loc::Reg(RegId::new(y_cl, 0)), "q", record_ir::Bank::Y);
        let mut code = Code::default();
        // moves BEFORE the arithmetic: pack_moves cannot absorb them, the
        // scheduler can (it reorders within the dependence DAG)
        code.insns = vec![mv1, mv2, arith];
        let stats = schedule(&mut code, &t, ScheduleMode::List);
        assert_eq!(stats.insns_before, 3);
        assert_eq!(stats.bundles_after, 1, "{:#?}", code.insns);
    }

    #[test]
    fn branch_and_bound_never_worse_than_list() {
        let t = record_isa::targets::dsp56k::target();
        let a_cl = t.reg_class("a").unwrap();
        let x_cl = t.reg_class("x").unwrap();
        let y_cl = t.reg_class("y").unwrap();
        let mk_arith = |ix: u16, name: &str| {
            Insn::compute(
                Loc::Reg(RegId::new(a_cl, ix)),
                SemExpr::un(record_ir::UnOp::Neg, SemExpr::loc(Loc::Reg(RegId::new(a_cl, ix)))),
                name,
                1,
                1,
            )
        };
        let seg = vec![
            dsp_move(Loc::Reg(RegId::new(x_cl, 0)), "p", record_ir::Bank::X),
            mk_arith(0, "NEG a0"),
            dsp_move(Loc::Reg(RegId::new(y_cl, 0)), "q", record_ir::Bank::Y),
            mk_arith(1, "NEG a1"),
            dsp_move(Loc::Reg(RegId::new(x_cl, 1)), "r", record_ir::Bank::X),
        ];
        let mut list_code = Code::default();
        list_code.insns = seg.clone();
        let ls = schedule(&mut list_code, &t, ScheduleMode::List);
        let mut bb_code = Code::default();
        bb_code.insns = seg;
        let bb = schedule(&mut bb_code, &t, ScheduleMode::BranchAndBound { max_segment: 10 });
        assert!(bb.bundles_after <= ls.bundles_after);
        assert!(bb.bundles_after >= 2, "two arithmetic ops cannot share a bundle");
    }

    #[test]
    fn hoist_moves_invariant_constant_load_out() {
        let t = record_isa::targets::tic25::target();
        let acc = t.reg_class("acc").unwrap();
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
            "LOOP 4",
            2,
            2,
        ));
        // LACK 7 ; SACL a[i]  — the load is invariant
        code.insns.push(Insn::mov(Loc::Reg(RegId::singleton(acc)), Loc::Imm(7), "LACK 7", 1, 1));
        let a_i = MemLoc {
            base: Symbol::new("a"),
            disp: 0,
            index: Some(Symbol::new("i")),
            down: false,
            bank: record_ir::Bank::X,
            mode: record_isa::AddrMode::Unresolved,
        };
        code.insns.push(Insn::mov(
            Loc::Mem(a_i),
            Loc::Reg(RegId::singleton(acc)),
            "SACL a[i]",
            1,
            1,
        ));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLP", 2, 3));
        let n = hoist_invariant_prefix(&mut code);
        assert_eq!(n, 1);
        assert_eq!(code.insns[0].text, "LACK 7");
        assert!(matches!(code.insns[1].kind, InsnKind::LoopStart { .. }));
        code.verify().unwrap();
    }

    #[test]
    fn hoist_refuses_variant_or_clobbered_loads() {
        let t = record_isa::targets::tic25::target();
        let acc = t.reg_class("acc").unwrap();
        let mk_loop = |body: Vec<Insn>| {
            let mut code = Code::default();
            code.insns.push(Insn::ctrl(
                InsnKind::LoopStart { var: Symbol::new("i"), count: 4 },
                "LOOP",
                2,
                2,
            ));
            code.insns.extend(body);
            code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "END", 2, 3));
            code
        };
        // loop-variant operand: not hoistable
        let a_i = MemLoc {
            base: Symbol::new("a"),
            disp: 0,
            index: Some(Symbol::new("i")),
            down: false,
            bank: record_ir::Bank::X,
            mode: record_isa::AddrMode::Unresolved,
        };
        let mut code = mk_loop(vec![
            Insn::mov(Loc::Reg(RegId::singleton(acc)), Loc::Mem(a_i), "LAC a[i]", 1, 1),
            Insn::mov(mem("y"), Loc::Reg(RegId::singleton(acc)), "SACL y", 1, 1),
        ]);
        assert_eq!(hoist_invariant_prefix(&mut code), 0);

        // destination rewritten later in the body: not hoistable
        let mut code = mk_loop(vec![
            Insn::mov(Loc::Reg(RegId::singleton(acc)), Loc::Imm(7), "LACK 7", 1, 1),
            Insn::mov(mem("y"), Loc::Reg(RegId::singleton(acc)), "SACL y", 1, 1),
            Insn::mov(Loc::Reg(RegId::singleton(acc)), Loc::Imm(9), "LACK 9", 1, 1),
            Insn::mov(mem("z"), Loc::Reg(RegId::singleton(acc)), "SACL z", 1, 1),
        ]);
        assert_eq!(hoist_invariant_prefix(&mut code), 0);

        // source memory written by the body tail: not hoistable
        let mut code = mk_loop(vec![
            Insn::mov(Loc::Reg(RegId::singleton(acc)), mem("y"), "LAC y", 1, 1),
            Insn::mov(mem("y"), Loc::Imm(0), "CLR y", 1, 1),
        ]);
        assert_eq!(hoist_invariant_prefix(&mut code), 0);
    }

    #[test]
    fn schedule_respects_dependences() {
        let t = record_isa::targets::dsp56k::target();
        let x_cl = t.reg_class("x").unwrap();
        // chain: LD x0 <- p ; ST p <- x0 must stay ordered
        let a = dsp_move(Loc::Reg(RegId::new(x_cl, 0)), "p", record_ir::Bank::X);
        let b = Insn::mov(mem("p"), Loc::Reg(RegId::new(x_cl, 0)).clone(), "MOVE x0,p", 1, 1);
        let mut code = Code::default();
        code.insns = vec![a, b];
        let stats = schedule(&mut code, &t, ScheduleMode::BranchAndBound { max_segment: 10 });
        assert_eq!(stats.bundles_after, 2);
    }
}

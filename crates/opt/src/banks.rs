//! Memory-bank assignment (Sudarsanam/Malik style).
//!
//! "A few DSPs support multiple memory banks. Whenever the arguments of a
//! binary operation are available in two different memory banks, the
//! operation executes faster. Assigning variables to memory banks such
//! that as many operations as possible will find their operands in
//! different banks is an optimization that can be more easily performed
//! by a compiler than by an assembly language programmer." (Section 3.3.)
//!
//! We build a weighted *conflict graph*: an edge between two symbols for
//! every instruction window in which their values are wanted together
//! (same instruction, or adjacent move+arithmetic pairs that parallel
//! packing could merge). Greedy placement in decreasing weight order
//! followed by a local-improvement (flip) pass maximizes the weight of
//! cross-bank edges. Source-level `bank` hints are honoured as fixed.

use std::collections::HashMap;

use record_ir::{Bank, Symbol};
use record_isa::code::LayoutEntry;
use record_isa::{Code, InsnKind, Loc, TargetDesc};

use crate::budget::{BudgetExceeded, SearchBudget};

/// Statistics from bank assignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Total pair weight observed.
    pub total_weight: u32,
    /// Pair weight placed in different banks (the maximized objective).
    pub cross_bank_weight: u32,
    /// Number of symbols moved to bank Y.
    pub moved_to_y: u32,
}

/// Assigns banks to unhinted symbols to maximize cross-bank operand
/// pairs; rewrites the layout and the bank attribute of every memory
/// operand. Single-bank targets are returned unchanged.
///
/// `fixed` lists symbols whose bank must not change (source hints).
pub fn assign_banks(
    code: &mut Code,
    target: &TargetDesc,
    fixed: &HashMap<Symbol, Bank>,
) -> BankStats {
    assign_banks_budgeted(code, target, fixed, &SearchBudget::unlimited())
        .expect("unlimited budget never fires")
}

/// [`assign_banks`] under a [`SearchBudget`]: the greedy placement and
/// the local-improvement loop charge one step per conflict-graph edge
/// they evaluate. On exhaustion the code is left **unmodified** (layout
/// and operands are only rewritten once the search completes).
///
/// # Errors
///
/// [`BudgetExceeded`] if the budget runs out mid-search.
pub fn assign_banks_budgeted(
    code: &mut Code,
    target: &TargetDesc,
    fixed: &HashMap<Symbol, Bank>,
    budget: &SearchBudget,
) -> Result<BankStats, BudgetExceeded> {
    let mut stats = BankStats::default();
    if target.memory.banks < 2 {
        return Ok(stats);
    }

    // --- gather pair weights ---------------------------------------------
    let mut weights: HashMap<(Symbol, Symbol), u32> = HashMap::new();
    let mut bump = |a: &Symbol, b: &Symbol| {
        if a == b {
            return;
        }
        let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        *weights.entry(key).or_insert(0) += 1;
    };
    let windows: Vec<Vec<Symbol>> = operand_windows(code);
    for w in &windows {
        for i in 0..w.len() {
            for j in i + 1..w.len() {
                bump(&w[i], &w[j]);
            }
        }
    }
    stats.total_weight = weights.values().sum();

    // --- greedy placement ---------------------------------------------------
    let mut assignment: HashMap<Symbol, Bank> = fixed.clone();
    let mut symbols: Vec<Symbol> = code.layout.entries().iter().map(|e| e.sym.clone()).collect();
    // order by total incident weight, heaviest first
    let incident = |s: &Symbol| -> u32 {
        weights.iter().filter(|((a, b), _)| a == s || b == s).map(|(_, w)| *w).sum()
    };
    symbols.sort_by(|a, b| incident(b).cmp(&incident(a)).then(a.cmp(b)));
    for sym in &symbols {
        if assignment.contains_key(sym) {
            continue;
        }
        budget.charge(weights.len().max(1) as u64)?;
        // gain of each bank = weight to already-placed neighbours in the
        // other bank
        let mut gain = [0i64, 0i64];
        for ((a, b), w) in &weights {
            let other = if a == sym {
                b
            } else if b == sym {
                a
            } else {
                continue;
            };
            if let Some(bank) = assignment.get(other) {
                gain[bank.other() as usize] += *w as i64;
            }
        }
        let bank = if gain[Bank::Y as usize] > gain[Bank::X as usize] { Bank::Y } else { Bank::X };
        assignment.insert(sym.clone(), bank);
    }

    // --- local improvement (flip while it helps) ----------------------------
    let cross = |assignment: &HashMap<Symbol, Bank>| -> u32 {
        weights
            .iter()
            .filter(|((a, b), _)| assignment.get(a) != assignment.get(b))
            .map(|(_, w)| *w)
            .sum()
    };
    let mut improved = true;
    while improved {
        improved = false;
        for sym in &symbols {
            if fixed.contains_key(sym) {
                continue;
            }
            // each flip trial recomputes the full cross-bank weight
            budget.charge(2 * weights.len().max(1) as u64)?;
            let before = cross(&assignment);
            let old = assignment[sym];
            assignment.insert(sym.clone(), old.other());
            if cross(&assignment) > before {
                improved = true;
            } else {
                assignment.insert(sym.clone(), old);
            }
        }
    }
    stats.cross_bank_weight = cross(&assignment);

    // --- rewrite layout and operands -----------------------------------------
    let entries: Vec<LayoutEntry> = {
        let mut next = [0u16, 0u16];
        code.layout
            .entries()
            .iter()
            .map(|e| {
                let bank = *assignment.get(&e.sym).unwrap_or(&Bank::X);
                let addr = next[bank as usize];
                next[bank as usize] += e.len as u16;
                LayoutEntry { sym: e.sym.clone(), addr, len: e.len, bank }
            })
            .collect()
    };
    stats.moved_to_y = entries.iter().filter(|e| e.bank == Bank::Y).count() as u32;
    code.layout.replace_entries(entries);
    for insn in &mut code.insns {
        rewrite_banks(insn, &assignment);
    }
    Ok(stats)
}

fn rewrite_banks(insn: &mut record_isa::Insn, assignment: &HashMap<Symbol, Bank>) {
    if let InsnKind::Compute { dst, expr } = &mut insn.kind {
        for l in expr.reads_mut() {
            if let Loc::Mem(m) = l {
                if let Some(b) = assignment.get(&m.base) {
                    m.bank = *b;
                }
            }
        }
        if let Loc::Mem(m) = dst {
            if let Some(b) = assignment.get(&m.base) {
                m.bank = *b;
            }
        }
    }
    for p in &mut insn.parallel {
        rewrite_banks(p, assignment);
    }
}

/// The "wanted together" windows: the distinct memory bases read by each
/// instruction, and by each adjacent (move, compute) pair.
fn operand_windows(code: &Code) -> Vec<Vec<Symbol>> {
    let mut windows = Vec::new();
    let insn_bases = |insn: &record_isa::Insn| -> Vec<Symbol> {
        let mut v: Vec<Symbol> =
            insn.srcs().iter().filter_map(|l| l.as_mem().map(|m| m.base.clone())).collect();
        v.dedup();
        v
    };
    for (i, insn) in code.insns.iter().enumerate() {
        let own = insn_bases(insn);
        if own.len() >= 2 {
            windows.push(own.clone());
        }
        if let Some(next) = code.insns.get(i + 1) {
            let mut joint = own;
            joint.extend(insn_bases(next));
            joint.sort();
            joint.dedup();
            if joint.len() >= 2 {
                windows.push(joint);
            }
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_isa::{Insn, MemLoc};

    fn mem(name: &str) -> Loc {
        Loc::Mem(MemLoc::scalar(name))
    }

    fn mul(dst: &str, a: &str, b: &str) -> Insn {
        Insn::compute(
            mem(dst),
            record_isa::SemExpr::bin(
                record_ir::BinOp::Mul,
                record_isa::SemExpr::loc(mem(a)),
                record_isa::SemExpr::loc(mem(b)),
            ),
            format!("MUL {dst},{a},{b}"),
            1,
            1,
        )
    }

    fn code_with(insns: Vec<Insn>, syms: &[&str]) -> Code {
        let mut code = Code::default();
        for (addr, s) in syms.iter().enumerate() {
            code.layout.place(Symbol::new(*s), addr as u16, 1, Bank::X);
        }
        code.insns = insns;
        code
    }

    #[test]
    fn single_bank_target_is_untouched() {
        let t = record_isa::targets::tic25::target();
        let mut code = code_with(vec![mul("y", "a", "b")], &["a", "b", "y"]);
        let stats = assign_banks(&mut code, &t, &HashMap::new());
        assert_eq!(stats, BankStats::default());
    }

    #[test]
    fn operand_pairs_split_across_banks() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = code_with(vec![mul("y", "a", "b")], &["a", "b", "y"]);
        let stats = assign_banks(&mut code, &t, &HashMap::new());
        assert!(stats.cross_bank_weight >= 1);
        let a = code.layout.entry(&Symbol::new("a")).unwrap().bank;
        let b = code.layout.entry(&Symbol::new("b")).unwrap().bank;
        assert_ne!(a, b, "multiplication operands should land in different banks");
    }

    #[test]
    fn hints_are_respected() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = code_with(vec![mul("y", "a", "b")], &["a", "b", "y"]);
        let fixed: HashMap<Symbol, Bank> = [(Symbol::new("a"), Bank::Y)].into_iter().collect();
        assign_banks(&mut code, &t, &fixed);
        assert_eq!(code.layout.entry(&Symbol::new("a")).unwrap().bank, Bank::Y);
        assert_eq!(code.layout.entry(&Symbol::new("b")).unwrap().bank, Bank::X);
    }

    #[test]
    fn operand_banks_rewritten_in_code() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = code_with(vec![mul("y", "a", "b")], &["a", "b", "y"]);
        assign_banks(&mut code, &t, &HashMap::new());
        let banks: Vec<Bank> =
            code.insns[0].srcs().iter().filter_map(|l| l.as_mem().map(|m| m.bank)).collect();
        assert_eq!(banks.len(), 2);
        assert_ne!(banks[0], banks[1]);
    }

    #[test]
    fn chain_of_pairs_alternates() {
        // a-b, b-c, c-d pairs: optimal alternation a,c vs b,d
        let t = record_isa::targets::dsp56k::target();
        let insns = vec![mul("t1", "a", "b"), mul("t2", "b", "c"), mul("t3", "c", "d")];
        let mut code = code_with(insns, &["a", "b", "c", "d", "t1", "t2", "t3"]);
        let stats = assign_banks(&mut code, &t, &HashMap::new());
        let bank = |s: &str| code.layout.entry(&Symbol::new(s)).unwrap().bank;
        assert_ne!(bank("a"), bank("b"));
        assert_ne!(bank("b"), bank("c"));
        assert_ne!(bank("c"), bank("d"));
        assert!(stats.cross_bank_weight >= 3);
    }

    #[test]
    fn addresses_repacked_per_bank() {
        let t = record_isa::targets::dsp56k::target();
        let mut code = code_with(vec![mul("y", "a", "b")], &["a", "b", "y"]);
        assign_banks(&mut code, &t, &HashMap::new());
        // addresses must start at 0 in each bank and not collide
        let mut seen: HashMap<(Bank, u16), &Symbol> = HashMap::new();
        for e in code.layout.entries() {
            assert!(seen.insert((e.bank, e.addr), &e.sym).is_none());
        }
    }
}

//! Data-memory layout construction.

use record_ir::lir::VarInfo;
use record_ir::{Bank, Symbol};
use record_isa::{DataLayout, TargetDesc};

/// Places variables in declaration order, packing each bank from address
/// zero. Bank hints from the source are honoured; unhinted variables go
/// to bank X (single-bank targets ignore banks entirely).
///
/// This is the baseline the offset- and bank-assignment passes improve on.
///
/// # Errors
///
/// Returns an error if a bank overflows the target's memory.
///
/// # Example
///
/// ```
/// use record_ir::lir::{StorageKind, VarInfo};
/// use record_ir::Symbol;
///
/// let vars = vec![VarInfo {
///     name: Symbol::new("x"),
///     len: 4,
///     kind: StorageKind::Var,
///     bank: None,
///     is_fix: true,
/// }];
/// let target = record_isa::targets::tic25::target();
/// let layout = record_opt::declaration_layout(&vars, &target)?;
/// assert_eq!(layout.addr_of(&Symbol::new("x"), 0), Some((record_ir::Bank::X, 0)));
/// # Ok::<(), String>(())
/// ```
pub fn declaration_layout(vars: &[VarInfo], target: &TargetDesc) -> Result<DataLayout, String> {
    layout_in_order(vars.iter().map(|v| (v.name.clone(), v.len, v.bank)), target)
}

/// Places variables in the given order; `bank` of `None` means bank X.
///
/// # Errors
///
/// Returns an error if a bank overflows, a variable appears twice, or a
/// Y-bank placement is requested on a single-bank target.
pub fn layout_in_order(
    vars: impl IntoIterator<Item = (Symbol, u32, Option<Bank>)>,
    target: &TargetDesc,
) -> Result<DataLayout, String> {
    let mut layout = DataLayout::new();
    let mut next = [0u32; 2];
    for (sym, len, bank) in vars {
        let bank = bank.unwrap_or(Bank::X);
        if bank == Bank::Y && target.memory.banks < 2 {
            return Err(format!("`{sym}` requests bank Y but target {} has one bank", target.name));
        }
        let slot = bank as usize;
        let addr = next[slot];
        if addr + len > target.memory.words_per_bank as u32 {
            return Err(format!("bank {bank} overflows: `{sym}` needs {len} words at {addr}"));
        }
        if layout.entry(&sym).is_some() {
            return Err(format!("`{sym}` declared twice"));
        }
        layout.place(sym, addr as u16, len, bank);
        next[slot] += len;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn packs_sequentially() {
        let t = record_isa::targets::tic25::target();
        let l = layout_in_order(
            vec![(sym("a"), 4, None), (sym("b"), 1, None), (sym("c"), 2, None)],
            &t,
        )
        .unwrap();
        assert_eq!(l.addr_of(&sym("a"), 0), Some((Bank::X, 0)));
        assert_eq!(l.addr_of(&sym("b"), 0), Some((Bank::X, 4)));
        assert_eq!(l.addr_of(&sym("c"), 1), Some((Bank::X, 6)));
    }

    #[test]
    fn dual_bank_packs_independently() {
        let t = record_isa::targets::dsp56k::target();
        let l = layout_in_order(
            vec![
                (sym("a"), 4, Some(Bank::X)),
                (sym("b"), 4, Some(Bank::Y)),
                (sym("c"), 1, Some(Bank::X)),
            ],
            &t,
        )
        .unwrap();
        assert_eq!(l.addr_of(&sym("b"), 0), Some((Bank::Y, 0)));
        assert_eq!(l.addr_of(&sym("c"), 0), Some((Bank::X, 4)));
    }

    #[test]
    fn rejects_bank_y_on_single_bank_target() {
        let t = record_isa::targets::tic25::target();
        let err = layout_in_order(vec![(sym("a"), 1, Some(Bank::Y))], &t).unwrap_err();
        assert!(err.contains("one bank"));
    }

    #[test]
    fn rejects_overflow() {
        let t = record_isa::targets::tic25::target();
        let words = t.memory.words_per_bank as u32;
        let err = layout_in_order(vec![(sym("big"), words + 1, None)], &t).unwrap_err();
        assert!(err.contains("overflows"));
    }

    #[test]
    fn rejects_duplicates() {
        let t = record_isa::targets::tic25::target();
        let err = layout_in_order(vec![(sym("a"), 1, None), (sym("a"), 1, None)], &t).unwrap_err();
        assert!(err.contains("twice"));
    }
}

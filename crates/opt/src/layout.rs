//! Data-memory layout construction.

use std::fmt;

use record_ir::lir::VarInfo;
use record_ir::{Bank, Symbol};
use record_isa::{DataLayout, TargetDesc};

/// A structured data-layout failure, carrying the offending symbol and
/// bank rather than a pre-formatted string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A bank-Y placement was requested on a single-bank target.
    BankUnavailable {
        /// The symbol asking for bank Y.
        sym: Symbol,
        /// The target name.
        target: String,
    },
    /// A bank ran out of words.
    BankOverflow {
        /// The bank that overflowed.
        bank: Bank,
        /// The symbol that did not fit.
        sym: Symbol,
        /// Words the symbol needs.
        len: u32,
        /// The first free address when placement was attempted.
        addr: u32,
    },
    /// The same symbol was declared twice.
    DuplicateSymbol {
        /// The symbol.
        sym: Symbol,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::BankUnavailable { sym, target } => {
                write!(f, "`{sym}` requests bank Y but target {target} has one bank")
            }
            LayoutError::BankOverflow { bank, sym, len, addr } => {
                write!(f, "bank {bank} overflows: `{sym}` needs {len} words at {addr}")
            }
            LayoutError::DuplicateSymbol { sym } => write!(f, "`{sym}` declared twice"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Places variables in declaration order, packing each bank from address
/// zero. Bank hints from the source are honoured; unhinted variables go
/// to bank X (single-bank targets ignore banks entirely).
///
/// This is the baseline the offset- and bank-assignment passes improve on.
///
/// # Errors
///
/// Returns an error if a bank overflows the target's memory.
///
/// # Example
///
/// ```
/// use record_ir::lir::{StorageKind, VarInfo};
/// use record_ir::Symbol;
///
/// let vars = vec![VarInfo {
///     name: Symbol::new("x"),
///     len: 4,
///     kind: StorageKind::Var,
///     bank: None,
///     is_fix: true,
/// }];
/// let target = record_isa::targets::tic25::target();
/// let layout = record_opt::declaration_layout(&vars, &target)?;
/// assert_eq!(layout.addr_of(&Symbol::new("x"), 0), Some((record_ir::Bank::X, 0)));
/// # Ok::<(), record_opt::LayoutError>(())
/// ```
pub fn declaration_layout(
    vars: &[VarInfo],
    target: &TargetDesc,
) -> Result<DataLayout, LayoutError> {
    layout_in_order(vars.iter().map(|v| (v.name.clone(), v.len, v.bank)), target)
}

/// Places variables in the given order; `bank` of `None` means bank X.
///
/// # Errors
///
/// Returns an error if a bank overflows, a variable appears twice, or a
/// Y-bank placement is requested on a single-bank target.
pub fn layout_in_order(
    vars: impl IntoIterator<Item = (Symbol, u32, Option<Bank>)>,
    target: &TargetDesc,
) -> Result<DataLayout, LayoutError> {
    let mut layout = DataLayout::new();
    let mut next = [0u32; 2];
    for (sym, len, bank) in vars {
        let bank = bank.unwrap_or(Bank::X);
        if bank == Bank::Y && target.memory.banks < 2 {
            return Err(LayoutError::BankUnavailable { sym, target: target.name.to_string() });
        }
        let slot = bank as usize;
        let addr = next[slot];
        if addr + len > target.memory.words_per_bank as u32 {
            return Err(LayoutError::BankOverflow { bank, sym, len, addr });
        }
        if layout.entry(&sym).is_some() {
            return Err(LayoutError::DuplicateSymbol { sym });
        }
        layout.place(sym, addr as u16, len, bank);
        next[slot] += len;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn packs_sequentially() {
        let t = record_isa::targets::tic25::target();
        let l = layout_in_order(
            vec![(sym("a"), 4, None), (sym("b"), 1, None), (sym("c"), 2, None)],
            &t,
        )
        .unwrap();
        assert_eq!(l.addr_of(&sym("a"), 0), Some((Bank::X, 0)));
        assert_eq!(l.addr_of(&sym("b"), 0), Some((Bank::X, 4)));
        assert_eq!(l.addr_of(&sym("c"), 1), Some((Bank::X, 6)));
    }

    #[test]
    fn dual_bank_packs_independently() {
        let t = record_isa::targets::dsp56k::target();
        let l = layout_in_order(
            vec![
                (sym("a"), 4, Some(Bank::X)),
                (sym("b"), 4, Some(Bank::Y)),
                (sym("c"), 1, Some(Bank::X)),
            ],
            &t,
        )
        .unwrap();
        assert_eq!(l.addr_of(&sym("b"), 0), Some((Bank::Y, 0)));
        assert_eq!(l.addr_of(&sym("c"), 0), Some((Bank::X, 4)));
    }

    #[test]
    fn rejects_bank_y_on_single_bank_target() {
        let t = record_isa::targets::tic25::target();
        let err = layout_in_order(vec![(sym("a"), 1, Some(Bank::Y))], &t).unwrap_err();
        assert_eq!(err, LayoutError::BankUnavailable { sym: sym("a"), target: "tic25".into() });
    }

    #[test]
    fn rejects_overflow() {
        let t = record_isa::targets::tic25::target();
        let words = t.memory.words_per_bank as u32;
        let err = layout_in_order(vec![(sym("big"), words + 1, None)], &t).unwrap_err();
        assert!(matches!(err, LayoutError::BankOverflow { len, .. } if len == words + 1));
    }

    #[test]
    fn rejects_duplicates() {
        let t = record_isa::targets::tic25::target();
        let err = layout_in_order(vec![(sym("a"), 1, None), (sym("a"), 1, None)], &t).unwrap_err();
        assert_eq!(err, LayoutError::DuplicateSymbol { sym: sym("a") });
    }
}

//! Cooperative resource budgets for the search-based optimizations.
//!
//! Compaction's branch-and-bound scheduler and the offset-/bank-
//! assignment searches are superlinear in the worst case. A
//! [`SearchBudget`] bounds them: the search charges one unit per
//! elementary step (a DFS node, a bundle candidate, a flip evaluation)
//! and aborts with [`BudgetExceeded`] instead of running away. Budgets
//! are cooperative — they cost one counter increment per step and an
//! occasional clock read — and an unlimited budget
//! ([`SearchBudget::unlimited`]) never fires, so the unbudgeted entry
//! points keep their exact historical behavior.

use std::cell::Cell;
use std::fmt;
use std::time::Instant;

/// How often (in charged steps) the deadline clock is consulted; reading
/// the clock on every step would dominate small searches.
const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// A search exhausted its budget; `resource` names which bound fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The exhausted resource: `"steps"` or `"deadline"`.
    pub resource: &'static str,
    /// Steps the search had charged when the bound fired (feeds the
    /// `budget-exceeded` trace events).
    pub steps: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "search budget exceeded: {} (after {} steps)", self.resource, self.steps)
    }
}

impl std::error::Error for BudgetExceeded {}

/// A step/deadline allowance shared across one optimization search.
///
/// Interior mutability keeps the budget threadable through `&self`
/// recursion without plumbing `&mut` everywhere.
#[derive(Debug)]
pub struct SearchBudget {
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    steps: Cell<u64>,
    next_clock_check: Cell<u64>,
}

impl SearchBudget {
    /// A budget with the given step cap and wall-clock deadline; `None`
    /// means unbounded for that resource.
    pub fn new(max_steps: Option<u64>, deadline: Option<Instant>) -> Self {
        SearchBudget {
            max_steps,
            deadline,
            steps: Cell::new(0),
            next_clock_check: Cell::new(DEADLINE_CHECK_INTERVAL),
        }
    }

    /// A budget that never fires.
    pub fn unlimited() -> Self {
        SearchBudget::new(None, None)
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Charges `n` elementary search steps.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] once the step cap is passed or the deadline has
    /// elapsed (the deadline is polled every `DEADLINE_CHECK_INTERVAL`
    /// steps, not on every charge).
    pub fn charge(&self, n: u64) -> Result<(), BudgetExceeded> {
        let steps = self.steps.get().saturating_add(n);
        self.steps.set(steps);
        if let Some(max) = self.max_steps {
            if steps > max {
                return Err(BudgetExceeded { resource: "steps", steps });
            }
        }
        if let Some(deadline) = self.deadline {
            if steps >= self.next_clock_check.get() {
                self.next_clock_check.set(steps.saturating_add(DEADLINE_CHECK_INTERVAL));
                if Instant::now() >= deadline {
                    return Err(BudgetExceeded { resource: "deadline", steps });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_fires() {
        let b = SearchBudget::unlimited();
        for _ in 0..10_000 {
            b.charge(1).unwrap();
        }
        assert_eq!(b.steps(), 10_000);
    }

    #[test]
    fn step_cap_fires_at_the_boundary() {
        let b = SearchBudget::new(Some(10), None);
        for _ in 0..10 {
            b.charge(1).unwrap();
        }
        let err = b.charge(1).unwrap_err();
        assert_eq!(err.resource, "steps");
        assert!(err.to_string().contains("steps"));
    }

    #[test]
    fn elapsed_deadline_fires() {
        let b = SearchBudget::new(None, Some(Instant::now() - Duration::from_millis(1)));
        // the clock is only polled every DEADLINE_CHECK_INTERVAL steps
        let mut fired = None;
        for _ in 0..=DEADLINE_CHECK_INTERVAL {
            if let Err(e) = b.charge(1) {
                fired = Some(e);
                break;
            }
        }
        assert_eq!(fired.expect("deadline must fire within one interval").resource, "deadline");
    }

    #[test]
    fn bulk_charges_count() {
        let b = SearchBudget::new(Some(100), None);
        b.charge(100).unwrap();
        assert_eq!(b.charge(1).unwrap_err().resource, "steps");
    }
}

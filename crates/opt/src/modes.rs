//! Mode-change (residual control) minimization.
//!
//! "Many DSPs have multiple operation modes … Switching from one mode to
//! the other requires executing mode changing instructions. The issue for
//! compilers is to minimize the number of mode-changing instructions."
//! (Section 3.3, citing Liao.)
//!
//! Instructions carry their requirement in
//! [`Insn::mode_req`](record_isa::Insn::mode_req). For a linear sequence
//! and independent binary modes, lazy switching — change only when the
//! next requirement differs from the current state — is optimal; loops
//! additionally get single-polarity requirements hoisted into the
//! preheader and mixed-polarity bodies a restoring change before the back
//! edge so that every iteration enters in the same state.

use record_isa::{Code, Insn, InsnKind, TargetDesc};

/// How mode changes are inserted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModeStrategy {
    /// Switch only when the required state differs from the tracked state
    /// (with loop hoisting) — the optimized strategy.
    Lazy,
    /// Switch before *every* requiring instruction and restore the default
    /// after it — the naive baseline the ablation bench compares against.
    PerUse,
}

/// Inserts mode-change instructions so that every instruction's
/// requirement is met; returns how many were inserted.
///
/// Programs whose instructions carry no requirements are returned
/// untouched (cost 0) — the common case for non-saturating kernels.
pub fn insert_mode_changes(code: &mut Code, target: &TargetDesc, strategy: ModeStrategy) -> u32 {
    if target.modes.is_empty() {
        return 0;
    }
    let insns = std::mem::take(&mut code.insns);
    let mut state: Vec<bool> = target.modes.iter().map(|m| m.default_on).collect();
    let mut out = Vec::with_capacity(insns.len());
    let mut inserted = 0u32;

    match strategy {
        ModeStrategy::PerUse => {
            let mut i = 0usize;
            while i < insns.len() {
                let insn = &insns[i];
                // an RPT and its body are inseparable: any change the body
                // needs goes *before* the RPT, the restore after the body
                let (req_insn, span) = match insn.kind {
                    InsnKind::Rpt { .. } if i + 1 < insns.len() => (&insns[i + 1], 2),
                    _ => (insn, 1),
                };
                if let Some((mode, on)) = req_insn.mode_req {
                    let default = target.modes[mode].default_on;
                    if on != default {
                        out.push(set_mode(target, mode, on));
                        out.extend(insns[i..i + span].iter().cloned());
                        out.push(set_mode(target, mode, default));
                        inserted += 2;
                        i += span;
                        continue;
                    }
                }
                out.extend(insns[i..i + span].iter().cloned());
                i += span;
            }
        }
        ModeStrategy::Lazy => {
            inserted = lazy(&insns, target, &mut state, &mut out);
        }
    }
    code.insns = out;
    inserted
}

fn set_mode(target: &TargetDesc, mode: usize, on: bool) -> Insn {
    let desc = &target.modes[mode];
    let text = if on { desc.set_asm.clone() } else { desc.clear_asm.clone() };
    Insn::ctrl(InsnKind::SetMode { mode, on }, text, desc.cost.words, desc.cost.cycles)
}

/// Lazy insertion over a (possibly loop-structured) instruction sequence.
fn lazy(insns: &[Insn], target: &TargetDesc, state: &mut [bool], out: &mut Vec<Insn>) -> u32 {
    let mut inserted = 0u32;
    let mut i = 0usize;
    while i < insns.len() {
        let insn = &insns[i];
        match &insn.kind {
            InsnKind::LoopStart { .. } => {
                // find the matching end
                let mut depth = 1;
                let mut j = i + 1;
                while j < insns.len() && depth > 0 {
                    match insns[j].kind {
                        InsnKind::LoopStart { .. } => depth += 1,
                        InsnKind::LoopEnd => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let body = &insns[i + 1..j - 1];

                // hoist single-polarity requirements
                #[allow(clippy::needless_range_loop)] // mode indexes two tables
                for mode in 0..target.modes.len() {
                    if let Some(polarity) = single_polarity(body, mode) {
                        if state[mode] != polarity {
                            out.push(set_mode(target, mode, polarity));
                            state[mode] = polarity;
                            inserted += 1;
                        }
                    }
                }
                out.push(insn.clone());
                let entry = state.to_vec();
                let mut body_out = Vec::new();
                inserted += lazy(body, target, state, &mut body_out);
                out.extend(body_out);
                // restore entry state so every iteration sees it
                #[allow(clippy::needless_range_loop)] // two slices indexed in lockstep
                for mode in 0..target.modes.len() {
                    if state[mode] != entry[mode] {
                        out.push(set_mode(target, mode, entry[mode]));
                        state[mode] = entry[mode];
                        inserted += 1;
                    }
                }
                out.push(insns[j - 1].clone());
                i = j;
                continue;
            }
            InsnKind::Rpt { .. } => {
                // an RPT and its body are inseparable: satisfy the body's
                // requirement *before* the RPT, never between the two
                if let Some(body) = insns.get(i + 1) {
                    if let Some((mode, on)) = body.mode_req {
                        if state[mode] != on {
                            out.push(set_mode(target, mode, on));
                            state[mode] = on;
                            inserted += 1;
                        }
                    }
                    out.push(insn.clone());
                    out.push(body.clone());
                    i += 2;
                    continue;
                }
                out.push(insn.clone());
            }
            InsnKind::SetMode { mode, on } => {
                // pre-existing changes update tracking
                state[*mode] = *on;
                out.push(insn.clone());
            }
            _ => {
                if let Some((mode, on)) = insn.mode_req {
                    if state[mode] != on {
                        out.push(set_mode(target, mode, on));
                        state[mode] = on;
                        inserted += 1;
                    }
                }
                out.push(insn.clone());
            }
        }
        i += 1;
    }
    inserted
}

/// If every requirement on `mode` inside `body` has the same polarity,
/// returns it.
fn single_polarity(body: &[Insn], mode: usize) -> Option<bool> {
    let mut polarity: Option<bool> = None;
    for insn in body {
        if let Some((m, on)) = insn.mode_req {
            if m == mode {
                match polarity {
                    None => polarity = Some(on),
                    Some(p) if p != on => return None,
                    _ => {}
                }
            }
        }
    }
    polarity
}

#[cfg(test)]
mod tests {
    use super::*;
    use record_isa::{Loc, MemLoc};

    fn t() -> TargetDesc {
        record_isa::targets::tic25::target()
    }

    fn req(on: bool) -> Insn {
        let mut i = Insn::mov(
            Loc::Mem(MemLoc::scalar("y")),
            Loc::Mem(MemLoc::scalar("x")),
            if on { "SAT-OP" } else { "WRAP-OP" },
            1,
            1,
        );
        i.mode_req = Some((0, on));
        i
    }

    fn count_setmodes(code: &Code) -> usize {
        code.insns.iter().filter(|i| matches!(i.kind, InsnKind::SetMode { .. })).count()
    }

    #[test]
    fn no_requirements_no_changes() {
        let mut code = Code::default();
        code.insns.push(Insn::nop());
        assert_eq!(insert_mode_changes(&mut code, &t(), ModeStrategy::Lazy), 0);
        assert_eq!(count_setmodes(&code), 0);
    }

    #[test]
    fn lazy_switches_once_per_run() {
        let mut code = Code::default();
        for _ in 0..3 {
            code.insns.push(req(true));
        }
        for _ in 0..2 {
            code.insns.push(req(false));
        }
        let n = insert_mode_changes(&mut code, &t(), ModeStrategy::Lazy);
        // one SOVM before the first, one ROVM before the fourth
        assert_eq!(n, 2);
        assert!(matches!(code.insns[0].kind, InsnKind::SetMode { on: true, .. }));
    }

    #[test]
    fn per_use_pays_per_instruction() {
        let mut code = Code::default();
        for _ in 0..3 {
            code.insns.push(req(true));
        }
        let n = insert_mode_changes(&mut code, &t(), ModeStrategy::PerUse);
        assert_eq!(n, 6, "set + restore around each of the three uses");
    }

    #[test]
    fn default_polarity_requirements_are_free_lazily() {
        let mut code = Code::default();
        code.insns.push(req(false)); // ovm defaults to off
        let n = insert_mode_changes(&mut code, &t(), ModeStrategy::Lazy);
        assert_eq!(n, 0);
    }

    #[test]
    fn single_polarity_loops_hoist() {
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: record_ir::Symbol::new("i"), count: 8 },
            "LOOP 8",
            2,
            2,
        ));
        code.insns.push(req(true));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        let n = insert_mode_changes(&mut code, &t(), ModeStrategy::Lazy);
        assert_eq!(n, 1, "{:?}", code.insns.iter().map(|i| &i.text).collect::<Vec<_>>());
        // the single change precedes the loop
        assert!(matches!(code.insns[0].kind, InsnKind::SetMode { on: true, .. }));
        assert!(matches!(code.insns[1].kind, InsnKind::LoopStart { .. }));
    }

    #[test]
    fn mixed_polarity_loops_restore_at_back_edge() {
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(
            InsnKind::LoopStart { var: record_ir::Symbol::new("i"), count: 8 },
            "LOOP 8",
            2,
            2,
        ));
        code.insns.push(req(true));
        code.insns.push(req(false));
        code.insns.push(Insn::ctrl(InsnKind::LoopEnd, "ENDLOOP", 2, 3));
        let n = insert_mode_changes(&mut code, &t(), ModeStrategy::Lazy);
        // set before the sat op, clear before the wrap op; state at the
        // back edge equals entry state (off), so no restore is needed
        assert_eq!(n, 2);
        code.verify().unwrap();
    }

    #[test]
    fn rpt_and_its_body_stay_adjacent() {
        // regression: a mode change required by a hardware-repeat body
        // must be hoisted above the RPT, never inserted between RPT and
        // the body (which would repeat the mode change instead).
        use record_isa::SemExpr;
        let body = || {
            let mut i = Insn::compute(
                Loc::Mem(MemLoc::scalar("y")),
                SemExpr::loc(Loc::Mem(MemLoc::scalar("x"))),
                "SAT-OP",
                1,
                1,
            );
            i.mode_req = Some((0, true));
            i
        };
        for strategy in [ModeStrategy::Lazy, ModeStrategy::PerUse] {
            let mut code = Code::default();
            code.insns.push(Insn::ctrl(InsnKind::Rpt { count: 4 }, "RPTK 4", 1, 1));
            code.insns.push(body());
            let n = insert_mode_changes(&mut code, &t(), strategy);
            assert!(n >= 1, "{strategy:?} inserted nothing");
            code.verify().unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(matches!(code.insns[0].kind, InsnKind::SetMode { on: true, .. }));
            assert!(matches!(code.insns[1].kind, InsnKind::Rpt { .. }));
        }
    }

    #[test]
    fn trailing_rpt_without_body_is_preserved() {
        // degenerate input: RPT as the last instruction must not panic
        let mut code = Code::default();
        code.insns.push(Insn::ctrl(InsnKind::Rpt { count: 2 }, "RPTK 2", 1, 1));
        for strategy in [ModeStrategy::Lazy, ModeStrategy::PerUse] {
            let mut c = code.clone();
            insert_mode_changes(&mut c, &t(), strategy);
            assert_eq!(c.insns.len(), 1);
        }
    }

    #[test]
    fn lazy_never_worse_than_per_use() {
        let patterns: Vec<Vec<bool>> = vec![
            vec![true, true, false, true],
            vec![false, false],
            vec![true],
            vec![true, false, true, false, true],
        ];
        for pat in patterns {
            let mut lazy_code = Code::default();
            let mut naive_code = Code::default();
            for &on in &pat {
                lazy_code.insns.push(req(on));
                naive_code.insns.push(req(on));
            }
            let nl = insert_mode_changes(&mut lazy_code, &t(), ModeStrategy::Lazy);
            let nn = insert_mode_changes(&mut naive_code, &t(), ModeStrategy::PerUse);
            assert!(nl <= nn, "lazy {nl} > per-use {nn} for {pat:?}");
        }
    }
}
